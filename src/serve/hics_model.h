#ifndef HICS_SERVE_HICS_MODEL_H_
#define HICS_SERVE_HICS_MODEL_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/subspace.h"
#include "core/hics.h"
#include "outlier/outlier_scorer.h"
#include "outlier/subspace_ranker.h"

namespace hics {

/// The outlier scorers a HicsModel can embed. An enum (not an arbitrary
/// OutlierScorer*) because the model must be serializable: the scorer is
/// reconstructed from (kind, k) on load, so only scorers whose full
/// configuration fits that pair — and which support out-of-sample scoring —
/// are admissible.
enum class ScorerKind : std::uint32_t {
  kLof = 0,
  kKnnDistance = 1,
  kKnnAverage = 2,
  /// O(N) histogram density tier (GridDensityScorer). Neighbor-free:
  /// fitting stores the per-subspace grid (edges + occupied-cell counts)
  /// as trained state and every query is an O(1) histogram lookup — no
  /// searcher, no kNN table.
  kGridDensity = 3,
};

/// Serializable scorer configuration: the kind plus its integer
/// parameter `k` — the neighborhood size for the kNN-family scorers
/// (LOF's min_pts, the kNN scorers' k), the bins per axis for
/// kGridDensity.
struct ScorerSpec {
  ScorerKind kind = ScorerKind::kLof;
  std::size_t k = 10;

  friend bool operator==(const ScorerSpec& a, const ScorerSpec& b) {
    return a.kind == b.kind && a.k == b.k;
  }
};

/// Instantiates the scorer a spec describes (serial, batch-kernel
/// defaults — performance knobs are not part of the model because they
/// never affect scores). Unknown kinds (e.g. from a corrupted or
/// newer-format model file) yield InvalidArgument, not UB.
Result<std::unique_ptr<OutlierScorer>> MakeScorer(const ScorerSpec& spec);

/// Everything that determines what a fitted model computes: the subspace
/// search configuration, the scorer, and the aggregation rule.
struct HicsModelConfig {
  HicsParams search_params;
  ScorerSpec scorer;
  ScoreAggregation aggregation = ScoreAggregation::kAverage;
  /// Shards of the fit-time data plane (DESIGN.md §5i). 1 (default) is
  /// the classic unsharded fit. Above 1, Fit partitions the training
  /// rows into a ShardedDataset and selects subspaces through the
  /// sharded search (per-shard Monte Carlo streams, row-count-weighted
  /// contrast merge) — typically the fastest fit on large N. Training
  /// scores and trained scorer state are always computed on the full
  /// dataset, so serving and RescoreTrainingSet stay byte-reproducible
  /// regardless of this knob; it changes *which* subspaces get selected
  /// (a different, ensemble-averaged contrast estimator), never the
  /// scoring semantics of the selected set. Persisted in the model
  /// header (format v2) for provenance.
  std::size_t num_shards = 1;
};

/// One selected subspace with its contrast and the scorer's trained state
/// in that projection (LOF: per-training-object k-distance + lrd channels;
/// the kNN scorers are stateless and carry empty channels).
struct TrainedSubspace {
  Subspace subspace;
  double contrast = 0.0;
  TrainedScorerState scorer_state;
};

/// Diagnostics of one ScoreQueries call under a RunContext: which queries
/// were scored, which per-subspace evaluations were isolated as failures
/// (injected faults at site "serve.subspace"), and whether the batch was
/// cut short by deadline or cancellation.
struct ServeDiagnostics {
  std::size_t queries_scored = 0;
  /// Per-(query, subspace) evaluations skipped by an isolated failure; the
  /// query's aggregate renormalizes over the surviving subspaces.
  std::size_t subspace_failures = 0;
  /// Failure tallies keyed by site ("serve.subspace", ...).
  std::map<std::string, std::size_t> error_tally;
  bool deadline_exceeded = false;
  bool cancelled = false;

  bool degraded() const {
    return subspace_failures > 0 || deadline_exceeded || cancelled;
  }
};

/// An immutable trained HiCS artifact: the high-contrast subspaces found at
/// fit time, the training scores, the scorer configuration, and the
/// per-subspace trained scorer state plus the training points themselves —
/// everything needed to (a) serve out-of-sample queries without refitting
/// and (b) reproduce the training-set ranking byte-for-byte in a fresh
/// process after save/load (model_io.h).
///
/// Scoring queries never mutates the trained state: searchers answer
/// through the const QueryKnnPoint path, so query points are compared
/// against the training set but never inserted into it. The lazily built
/// per-subspace searcher cache lives behind a mutex in a Runtime block and
/// is memoization only — a warm cache returns bit-identical scores to a
/// cold one.
class HicsModel {
 public:
  /// Raw constituents of a model, exposed for model_io's deserializer.
  /// FromParts validates cross-field consistency so a structurally valid
  /// but semantically broken file (wrong channel lengths, out-of-range
  /// attributes) is rejected with a precise Status instead of crashing
  /// later.
  struct Parts {
    HicsModelConfig config;
    Dataset training_data;
    std::vector<TrainedSubspace> subspaces;
    std::vector<double> training_scores;
  };

  HicsModel(HicsModel&&) = default;
  HicsModel& operator=(HicsModel&&) = default;
  HicsModel(const HicsModel&) = delete;
  HicsModel& operator=(const HicsModel&) = delete;

  /// Fits a model: runs the HiCS subspace search, scores the training set
  /// (byte-identical to RunHicsPipeline with the same parameters), and
  /// captures per-subspace trained scorer state. The dataset is copied
  /// into the model — a served model must not dangle on caller memory.
  /// Falls back to the full space when the search selects no subspace
  /// (mirroring the pipeline's fallback) so a fitted model always serves.
  static Result<HicsModel> Fit(const Dataset& dataset,
                               const HicsModelConfig& config);

  /// Reassembles a model from deserialized parts, validating invariants:
  /// consistent object counts, in-range subspace attributes, scorer-state
  /// channels of training-set length, and a scorer spec MakeScorer
  /// accepts.
  static Result<HicsModel> FromParts(Parts parts);

  const HicsModelConfig& config() const { return config_; }
  const Dataset& training_data() const { return training_data_; }
  const std::vector<TrainedSubspace>& subspaces() const { return subspaces_; }
  /// Training-set scores computed at fit time (the pipeline's output).
  const std::vector<double>& training_scores() const {
    return training_scores_;
  }
  std::size_t num_attributes() const {
    return training_data_.num_attributes();
  }
  std::size_t num_training_objects() const {
    return training_data_.num_objects();
  }

  /// Scores `num_queries` out-of-sample points (row-major, size
  /// num_queries * num_attributes) against the trained model: per
  /// subspace, the query's k nearest *training* neighbors feed the
  /// scorer's out-of-sample rule, and the per-subspace scores aggregate
  /// exactly like training scores. Deterministic: fresh-fit and
  /// save/load-restored models return bit-identical vectors.
  Result<std::vector<double>> ScoreQueries(std::span<const double> queries,
                                           std::size_t num_queries) const;

  /// Context-aware overload with graceful degradation: the context is
  /// checked between queries (on interruption the scored prefix is
  /// returned, flagged in `diagnostics`), and a per-(query, subspace)
  /// failure injected at site "serve.subspace" is isolated — the query's
  /// aggregate renormalizes over the surviving subspaces. Fails only when
  /// the batch is malformed or every subspace of a query fails.
  Result<std::vector<double>> ScoreQueries(std::span<const double> queries,
                                           std::size_t num_queries,
                                           const RunContext& ctx,
                                           ServeDiagnostics* diagnostics =
                                               nullptr) const;

  /// Recomputes the training-set ranking from the stored artifact through
  /// the same prepared-path RankWithSubspaces call Fit used. A restored
  /// model returns a vector byte-identical to training_scores() — the
  /// durability acceptance check.
  Result<std::vector<double>> RescoreTrainingSet() const;

 private:
  HicsModel(HicsModelConfig config, Dataset training_data,
            std::vector<TrainedSubspace> subspaces,
            std::vector<double> training_scores);

  /// The effective (clamped) neighborhood size used both at fit time and
  /// for every out-of-sample query.
  std::size_t EffectiveK() const;

  /// The memoized projected searcher for subspace index `s`, built on
  /// first use.
  const NeighborSearcher& SearcherFor(std::size_t s) const;

  HicsModelConfig config_;
  Dataset training_data_;
  std::vector<TrainedSubspace> subspaces_;
  std::vector<double> training_scores_;
  std::unique_ptr<OutlierScorer> scorer_;

  /// Mutable memoization state (mutex + caches) boxed so the model stays
  /// movable.
  struct Runtime {
    std::mutex mutex;
    std::vector<std::shared_ptr<const NeighborSearcher>> searchers;
  };
  std::unique_ptr<Runtime> runtime_;
};

}  // namespace hics

#endif  // HICS_SERVE_HICS_MODEL_H_
