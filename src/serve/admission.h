#ifndef HICS_SERVE_ADMISSION_H_
#define HICS_SERVE_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <mutex>

#include "common/run_context.h"
#include "common/status.h"

namespace hics {

/// Deadline-based admission control for a serving loop: estimates what a
/// batch will cost from an EWMA of observed per-query latency and rejects
/// work the remaining deadline budget cannot fit — up front, with a typed
/// kOverloaded Status, instead of starting (or queueing) work the
/// deadline dooms. The controller itself never blocks and never queues;
/// shedding is the caller returning the Overloaded status to its client.
///
/// The estimate is deliberately conservative: `safety_factor` scales the
/// EWMA so a borderline batch is shed rather than admitted into a
/// deadline miss. Cost observations are fed back with RecordBatch, so the
/// controller adapts as the model or the host load changes.
///
/// Thread-safe; one controller can guard a multi-threaded serving loop.
class AdmissionController {
 public:
  using Clock = RunContext::Clock;

  /// `initial_cost_per_query` seeds the estimate before the first
  /// RecordBatch; `safety_factor` (>= 1) is the headroom multiplier;
  /// `smoothing` in (0, 1] is the EWMA weight of the newest observation.
  explicit AdmissionController(
      Clock::duration initial_cost_per_query = std::chrono::microseconds(200),
      double safety_factor = 1.5, double smoothing = 0.2);

  /// Admission decision for a batch of `num_queries` against `ctx`'s
  /// deadline: OK to proceed, kOverloaded to shed (also injectable at
  /// fault site "serve.admit" for overload drills), or the context's own
  /// Cancelled / DeadlineExceeded when the run is already dead.
  Status AdmitBatch(const RunContext& ctx, std::size_t num_queries) const;

  /// Feeds one completed batch back into the cost model.
  void RecordBatch(std::size_t num_queries, Clock::duration elapsed);

  /// Current safety-scaled cost estimate for a batch.
  Clock::duration EstimatedBatchCost(std::size_t num_queries) const;

  /// Batches shed with kOverloaded by AdmitBatch (including injected
  /// overloads), for reporting.
  std::size_t shed_batches() const;

 private:
  double SafeCostPerQueryUs() const;

  const double safety_factor_;
  const double smoothing_;
  mutable std::mutex mutex_;
  double ewma_cost_per_query_us_;
  bool has_observation_ = false;
  mutable std::size_t shed_batches_ = 0;
};

}  // namespace hics

#endif  // HICS_SERVE_ADMISSION_H_
