#include "serve/hics_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "engine/sharded_dataset.h"
#include "outlier/grid_density.h"
#include "outlier/knn_outlier.h"
#include "outlier/lof.h"

namespace hics {

Result<std::unique_ptr<OutlierScorer>> MakeScorer(const ScorerSpec& spec) {
  if (spec.k == 0) {
    return Status::InvalidArgument(
        "scorer parameter k must be positive (neighborhood size; bins "
        "per axis for grid-density)");
  }
  switch (spec.kind) {
    case ScorerKind::kLof: {
      LofParams params;
      params.min_pts = spec.k;
      return std::unique_ptr<OutlierScorer>(
          std::make_unique<LofScorer>(params));
    }
    case ScorerKind::kKnnDistance:
      return std::unique_ptr<OutlierScorer>(
          std::make_unique<KnnDistanceScorer>(spec.k));
    case ScorerKind::kKnnAverage:
      return std::unique_ptr<OutlierScorer>(
          std::make_unique<KnnAverageScorer>(spec.k));
    case ScorerKind::kGridDensity: {
      GridDensityParams params;
      params.bins_per_dim = spec.k;
      return std::unique_ptr<OutlierScorer>(
          std::make_unique<GridDensityScorer>(params));
    }
  }
  return Status::InvalidArgument(
      "unknown scorer kind " +
      std::to_string(static_cast<std::uint32_t>(spec.kind)) +
      " (corrupt model file or newer format?)");
}

namespace {

/// The scorer-state channel count each kind serializes; pinned here so a
/// tampered file cannot smuggle a mismatched state past FromParts.
std::size_t ExpectedStateChannels(ScorerKind kind) {
  switch (kind) {
    case ScorerKind::kLof:
      return 2;
    case ScorerKind::kGridDensity:
      return GridDensityScorer::kStateChannels;
    default:
      return 0;
  }
}

std::vector<Subspace> PlainSubspaces(
    const std::vector<TrainedSubspace>& trained) {
  std::vector<Subspace> out;
  out.reserve(trained.size());
  for (const TrainedSubspace& t : trained) out.push_back(t.subspace);
  return out;
}

}  // namespace

HicsModel::HicsModel(HicsModelConfig config, Dataset training_data,
                     std::vector<TrainedSubspace> subspaces,
                     std::vector<double> training_scores)
    : config_(std::move(config)),
      training_data_(std::move(training_data)),
      subspaces_(std::move(subspaces)),
      training_scores_(std::move(training_scores)),
      runtime_(std::make_unique<Runtime>()) {
  auto scorer = MakeScorer(config_.scorer);
  HICS_CHECK(scorer.ok());  // callers validated the spec already
  scorer_ = std::move(scorer).ValueOrDie();
  runtime_->searchers.resize(subspaces_.size());
}

std::size_t HicsModel::EffectiveK() const {
  return ClampNeighborhoodSize(scorer_->NeighborhoodSize(),
                               num_training_objects(), "serve");
}

Result<HicsModel> HicsModel::Fit(const Dataset& dataset,
                                 const HicsModelConfig& config) {
  HICS_RETURN_NOT_OK(config.search_params.Validate());
  if (config.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Serving needs at least one real neighborhood; Validate also rejects
  // non-finite cells, which would otherwise round-trip through the model
  // file and poison queries forever.
  HICS_RETURN_NOT_OK(dataset.Validate(/*require_non_constant=*/false));
  HICS_ASSIGN_OR_RETURN(std::unique_ptr<OutlierScorer> scorer,
                        MakeScorer(config.scorer));
  if (!scorer->SupportsOutOfSample()) {
    return Status::InvalidArgument("scorer '" + scorer->name() +
                                   "' does not support out-of-sample "
                                   "scoring and cannot be served");
  }

  const std::size_t n = dataset.num_objects();
  const std::size_t threads = config.search_params.num_threads;
  PreparedDataset prepared(dataset, threads);

  // Step 1: subspace search. Unsharded fits make the same prepared-path
  // call the pipeline makes, so the selected subspaces are identical to
  // RunHicsPipeline's. Sharded fits select through the sharded search —
  // the fast path on large N — and only the selection differs: steps 2
  // and 3 below always run on the full prepared dataset, so training
  // scores, trained state, and serving stay byte-reproducible.
  HicsRunStats stats;
  std::vector<ScoredSubspace> scored;
  if (config.num_shards > 1) {
    const ShardedDataset sharded(dataset, config.num_shards, threads);
    HICS_ASSIGN_OR_RETURN(scored,
                          RunHicsSearch(sharded, config.search_params,
                                        &stats));
  } else {
    HICS_ASSIGN_OR_RETURN(scored,
                          RunHicsSearch(prepared, config.search_params,
                                        &stats));
  }

  std::vector<TrainedSubspace> trained;
  if (scored.empty()) {
    // Mirror the pipeline's full-space fallback so a fitted model always
    // has at least one subspace to serve from.
    trained.push_back(TrainedSubspace{dataset.FullSpace(), 0.0, {}});
  } else {
    trained.reserve(scored.size());
    for (ScoredSubspace& s : scored) {
      trained.push_back(TrainedSubspace{std::move(s.subspace), s.score, {}});
    }
  }

  // Step 2: training scores through the pipeline's own ranking call —
  // byte-identical to RunHicsPipeline with these parameters.
  std::vector<double> training_scores = RankWithSubspaces(
      prepared, PlainSubspaces(trained), *scorer, config.aggregation,
      threads);

  // Step 3: per-subspace trained scorer state. Neighbor-based scorers
  // build it from the same cached kNN tables the ranking pass used (or
  // the tables are built here if the scorer's internal path didn't need
  // them); neighbor-free scorers (grid-density) build it straight from
  // the prepared artifact — no kNN table ever exists for them.
  if (scorer->OutOfSampleNeedsNeighbors()) {
    const std::size_t k = ClampNeighborhoodSize(scorer->NeighborhoodSize(), n,
                                                "serve.fit");
    if (k == 0) {
      return Status::InvalidArgument(
          "cannot fit a servable model on fewer than 2 training objects");
    }
    for (TrainedSubspace& t : trained) {
      const KnnBackend backend = ChooseKnnBackend(n, t.subspace.size());
      const std::shared_ptr<const KnnResultTable> table =
          prepared.cache().GetKnnTable(t.subspace, backend, k, threads,
                                       /*use_batch_kernel=*/true);
      t.scorer_state = scorer->BuildTrainedState(*table);
    }
  } else {
    for (TrainedSubspace& t : trained) {
      t.scorer_state = scorer->BuildTrainedStatePrepared(prepared, t.subspace);
    }
  }

  return HicsModel(config, dataset, std::move(trained),
                   std::move(training_scores));
}

Result<HicsModel> HicsModel::FromParts(Parts parts) {
  HICS_ASSIGN_OR_RETURN(std::unique_ptr<OutlierScorer> scorer,
                        MakeScorer(parts.config.scorer));
  HICS_RETURN_NOT_OK(parts.config.search_params.Validate());
  if (parts.config.num_shards == 0) {
    return Status::DataLoss("model config has num_shards = 0");
  }
  HICS_RETURN_NOT_OK(
      parts.training_data.Validate(/*require_non_constant=*/false));
  const std::size_t n = parts.training_data.num_objects();
  const std::size_t d = parts.training_data.num_attributes();
  if (parts.subspaces.empty()) {
    return Status::DataLoss("model has no trained subspaces");
  }
  if (parts.training_scores.size() != n) {
    return Status::DataLoss(
        "training-score vector length " +
        std::to_string(parts.training_scores.size()) +
        " does not match the " + std::to_string(n) + " training objects");
  }
  for (double s : parts.training_scores) {
    if (std::isnan(s)) {
      return Status::DataLoss("non-finite training score in model");
    }
  }
  const std::size_t expected_channels =
      ExpectedStateChannels(parts.config.scorer.kind);
  for (const TrainedSubspace& t : parts.subspaces) {
    if (t.subspace.empty()) {
      return Status::DataLoss("model contains an empty subspace");
    }
    for (std::size_t dim : t.subspace) {
      if (dim >= d) {
        return Status::DataLoss(
            "subspace attribute " + std::to_string(dim) +
            " out of range for " + std::to_string(d) + " attributes");
      }
    }
    if (std::isnan(t.contrast)) {
      return Status::DataLoss("non-finite subspace contrast in model");
    }
    if (t.scorer_state.channels.size() != expected_channels) {
      return Status::DataLoss(
          "scorer state has " +
          std::to_string(t.scorer_state.channels.size()) +
          " channels, expected " + std::to_string(expected_channels));
    }
    if (parts.config.scorer.kind == ScorerKind::kGridDensity) {
      // Grid state channels are histogram-shaped (meta, keys, counts),
      // not per-object; the scorer owns their structural validation.
      const Status grid_state = GridDensityScorer::ValidateTrainedState(
          t.scorer_state, t.subspace.size(), n);
      if (!grid_state.ok()) {
        return Status::DataLoss(grid_state.message());
      }
    } else {
      for (const std::vector<double>& channel : t.scorer_state.channels) {
        if (channel.size() != n) {
          return Status::DataLoss(
              "scorer-state channel length " +
              std::to_string(channel.size()) + " does not match the " +
              std::to_string(n) + " training objects");
        }
        for (double v : channel) {
          // +inf is a legitimate lrd for duplicate-heavy neighborhoods;
          // NaN never is.
          if (std::isnan(v)) {
            return Status::DataLoss("NaN in trained scorer state");
          }
        }
      }
    }
  }
  return HicsModel(std::move(parts.config), std::move(parts.training_data),
                   std::move(parts.subspaces),
                   std::move(parts.training_scores));
}

const NeighborSearcher& HicsModel::SearcherFor(std::size_t s) const {
  HICS_DCHECK(s < subspaces_.size());
  std::lock_guard<std::mutex> lock(runtime_->mutex);
  std::shared_ptr<const NeighborSearcher>& slot = runtime_->searchers[s];
  if (slot == nullptr) {
    const Subspace& subspace = subspaces_[s].subspace;
    slot = MakeSearcher(training_data_, subspace,
                        ChooseKnnBackend(num_training_objects(),
                                         subspace.size()));
  }
  return *slot;
}

Result<std::vector<double>> HicsModel::ScoreQueries(
    std::span<const double> queries, std::size_t num_queries) const {
  RunContext ctx;  // unbounded, no faults: plain scoring
  ServeDiagnostics diagnostics;
  HICS_ASSIGN_OR_RETURN(std::vector<double> scores,
                        ScoreQueries(queries, num_queries, ctx,
                                     &diagnostics));
  HICS_CHECK(!diagnostics.degraded());  // nothing can degrade without a ctx
  return scores;
}

Result<std::vector<double>> HicsModel::ScoreQueries(
    std::span<const double> queries, std::size_t num_queries,
    const RunContext& ctx, ServeDiagnostics* diagnostics) const {
  const std::size_t d = num_attributes();
  if (queries.size() != num_queries * d) {
    return Status::InvalidArgument(
        "query batch of " + std::to_string(queries.size()) +
        " values is not " + std::to_string(num_queries) + " rows of " +
        std::to_string(d) + " attributes");
  }
  ServeDiagnostics local;
  const bool needs_neighbors = scorer_->OutOfSampleNeedsNeighbors();
  const std::size_t k = needs_neighbors ? EffectiveK() : 0;
  const std::size_t num_subspaces = subspaces_.size();

  std::vector<double> scores;
  scores.reserve(num_queries);
  std::vector<double> projected;
  std::vector<Neighbor> neighbors;
  std::vector<double> per_subspace;
  per_subspace.reserve(num_subspaces);

  for (std::size_t q = 0; q < num_queries; ++q) {
    // Checkpoint between queries: on interruption return the scored
    // prefix — partial-but-valid, never a hang past the deadline.
    const Status progress = ctx.CheckProgress();
    if (!progress.ok()) {
      if (progress.code() == StatusCode::kCancelled) local.cancelled = true;
      if (progress.code() == StatusCode::kDeadlineExceeded) {
        local.deadline_exceeded = true;
      }
      break;
    }

    per_subspace.clear();
    Status last_failure = Status::OK();
    for (std::size_t s = 0; s < num_subspaces; ++s) {
      // Deterministic fault ordinal: position in the logical
      // (query, subspace) evaluation sequence, independent of batching.
      const Status fault =
          ctx.InjectFault("serve.subspace", q * num_subspaces + s + 1);
      if (!fault.ok()) {
        ++local.subspace_failures;
        ++local.error_tally["serve.subspace"];
        last_failure = fault;
        continue;
      }
      const Subspace& subspace = subspaces_[s].subspace;
      projected.clear();
      for (std::size_t dim : subspace) projected.push_back(queries[q * d + dim]);
      if (needs_neighbors) {
        SearcherFor(s).QueryKnnPoint(projected, k, &neighbors);
        per_subspace.push_back(scorer_->ScoreOutOfSample(
            std::span<const Neighbor>(neighbors.data(), neighbors.size()),
            subspaces_[s].scorer_state));
      } else {
        // Neighbor-free tier: O(1) histogram lookup, no searcher at all.
        per_subspace.push_back(scorer_->ScoreOutOfSamplePoint(
            projected, subspaces_[s].scorer_state));
      }
    }

    if (per_subspace.empty()) {
      // Every subspace of this query failed — nothing to renormalize
      // over; surface the cause instead of inventing a score.
      return Status(last_failure.code(),
                    "every subspace failed for query " + std::to_string(q) +
                        ": " + last_failure.message());
    }

    double aggregate = 0.0;
    if (config_.aggregation == ScoreAggregation::kMax) {
      aggregate = *std::max_element(per_subspace.begin(), per_subspace.end());
    } else {
      for (double v : per_subspace) aggregate += v;
      aggregate /= static_cast<double>(per_subspace.size());
    }
    scores.push_back(aggregate);
    ++local.queries_scored;
  }

  if (diagnostics != nullptr) *diagnostics = std::move(local);
  return scores;
}

Result<std::vector<double>> HicsModel::RescoreTrainingSet() const {
  const std::size_t threads = config_.search_params.num_threads;
  PreparedDataset prepared(training_data_, threads);
  return RankWithSubspaces(prepared, PlainSubspaces(subspaces_), *scorer_,
                           config_.aggregation, threads);
}

}  // namespace hics
