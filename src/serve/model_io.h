#ifndef HICS_SERVE_MODEL_IO_H_
#define HICS_SERVE_MODEL_IO_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/hics_model.h"

namespace hics {

/// Binary model-file format (version 2):
///
///   [8]  magic "HICSMODL"
///   [u32] format version
///   [u32] section count
///   per section:
///     [u32] section id
///     [u64] payload size in bytes
///     [...] payload
///     [u32] CRC-32 of the payload
///
/// All integers and IEEE-754 doubles are little-endian. Every read is
/// bounds-checked and every payload is checksummed, so a truncated,
/// bit-flipped, or trailing-garbage file is rejected with a precise
/// non-OK Status (DataLoss for corruption, InvalidArgument for
/// wrong-magic / version-skewed files) — never undefined behavior, and
/// never a silently wrong model.
///
/// Version history:
///   v1 — initial format (PR 6).
///   v2 — config section gains num_shards (u64, appended after the
///        aggregation id): the fit-time shard count, persisted for
///        provenance. Readers of this build reject v1 files rather than
///        guess at a default — models are cheap to refit and a silent
///        default would misreport how a model was produced.
inline constexpr std::uint32_t kHicsModelFormatVersion = 2;
inline constexpr std::size_t kHicsModelMagicSize = 8;
inline constexpr char kHicsModelMagic[kHicsModelMagicSize + 1] = "HICSMODL";

/// Section ids of the model format. All four sections are required,
/// each exactly once, in this order.
enum class ModelSection : std::uint32_t {
  kConfig = 1,     ///< search params + scorer spec + aggregation
  kDataset = 2,    ///< training points (column-major), names, labels
  kSubspaces = 3,  ///< trained subspaces: dims, contrast, scorer state
  kScores = 4,     ///< training-set scores
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. Exposed so tests
/// can forge / verify checksums directly.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

/// Serializes a model to the current (version-2) byte format.
std::vector<std::uint8_t> SerializeHicsModel(const HicsModel& model);

/// Parses a model from bytes, validating magic, version, section
/// structure, checksums, and (via HicsModel::FromParts) semantic
/// invariants. Returns a precise error for every malformed input.
Result<HicsModel> DeserializeHicsModel(std::span<const std::uint8_t> bytes);

/// Atomically writes the model to `path`: serialize, write to a
/// temporary sibling file, fsync, then rename over the target — so a
/// crash mid-save leaves either the old file or the new one, never a
/// torn hybrid.
Status SaveHicsModel(const HicsModel& model, const std::string& path);

/// Reads and deserializes a model file saved by SaveHicsModel. Missing
/// or unreadable files yield IOError; malformed content yields the
/// DeserializeHicsModel errors.
Result<HicsModel> LoadHicsModel(const std::string& path);

}  // namespace hics

#endif  // HICS_SERVE_MODEL_IO_H_
