#include "serve/model_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace hics {

static_assert(std::endian::native == std::endian::little,
              "the model-file reader/writer assumes a little-endian host");

namespace {

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

// ---------------------------------------------------------------------------
// Little-endian buffer writer / bounds-checked reader
// ---------------------------------------------------------------------------

class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Cursor over an immutable byte span. Every accessor checks bounds and
/// returns DataLoss on overrun, so a truncated file can never read past
/// the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }

  Status U8(std::uint8_t* v) { return Raw(v, sizeof(*v), "u8"); }
  Status U32(std::uint32_t* v) { return Raw(v, sizeof(*v), "u32"); }
  Status U64(std::uint64_t* v) { return Raw(v, sizeof(*v), "u64"); }
  Status F64(double* v) { return Raw(v, sizeof(*v), "f64"); }

  Status Str(std::string* out) {
    std::uint64_t len = 0;
    HICS_RETURN_NOT_OK(U64(&len));
    if (len > remaining()) return Truncated("string");
    out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  Status F64Vec(std::vector<double>* out) {
    std::uint64_t count = 0;
    HICS_RETURN_NOT_OK(U64(&count));
    if (count > remaining() / sizeof(double)) return Truncated("f64 array");
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
    return Status::OK();
  }

  Status Skip(std::size_t n, const char* what) {
    if (n > remaining()) return Truncated(what);
    pos_ += n;
    return Status::OK();
  }

  std::span<const std::uint8_t> Peek(std::size_t n) const {
    HICS_DCHECK(n <= remaining());
    return bytes_.subspan(pos_, n);
  }

 private:
  Status Raw(void* v, std::size_t n, const char* what) {
    if (n > remaining()) return Truncated(what);
    std::memcpy(v, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status Truncated(const char* what) const {
    return Status::DataLoss("model file truncated while reading " +
                            std::string(what) + " at offset " +
                            std::to_string(pos_));
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> EncodeConfig(const HicsModelConfig& config) {
  Writer w;
  const HicsParams& p = config.search_params;
  w.U64(p.num_iterations);
  w.F64(p.alpha);
  w.U64(p.candidate_cutoff);
  w.U64(p.output_top_k);
  w.Str(p.statistical_test);
  w.U64(p.max_dimensionality);
  w.U8(p.prune_redundant ? 1 : 0);
  w.U64(p.seed);
  w.U64(p.num_threads);
  w.U8(p.use_rank_space_kernel ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(config.scorer.kind));
  w.U64(config.scorer.k);
  w.U32(static_cast<std::uint32_t>(config.aggregation));
  w.U64(config.num_shards);  // v2
  return w.Take();
}

Status DecodeConfig(Reader* r, HicsModelConfig* config) {
  HicsParams& p = config->search_params;
  std::uint64_t u64 = 0;
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  HICS_RETURN_NOT_OK(r->U64(&u64));
  p.num_iterations = u64;
  HICS_RETURN_NOT_OK(r->F64(&p.alpha));
  HICS_RETURN_NOT_OK(r->U64(&u64));
  p.candidate_cutoff = u64;
  HICS_RETURN_NOT_OK(r->U64(&u64));
  p.output_top_k = u64;
  HICS_RETURN_NOT_OK(r->Str(&p.statistical_test));
  HICS_RETURN_NOT_OK(r->U64(&u64));
  p.max_dimensionality = u64;
  HICS_RETURN_NOT_OK(r->U8(&u8));
  p.prune_redundant = u8 != 0;
  HICS_RETURN_NOT_OK(r->U64(&p.seed));
  HICS_RETURN_NOT_OK(r->U64(&u64));
  p.num_threads = u64;
  HICS_RETURN_NOT_OK(r->U8(&u8));
  p.use_rank_space_kernel = u8 != 0;
  HICS_RETURN_NOT_OK(r->U32(&u32));
  config->scorer.kind = static_cast<ScorerKind>(u32);
  HICS_RETURN_NOT_OK(r->U64(&u64));
  config->scorer.k = u64;
  HICS_RETURN_NOT_OK(r->U32(&u32));
  if (u32 > static_cast<std::uint32_t>(ScoreAggregation::kMax)) {
    return Status::DataLoss("invalid aggregation id " + std::to_string(u32));
  }
  config->aggregation = static_cast<ScoreAggregation>(u32);
  HICS_RETURN_NOT_OK(r->U64(&u64));  // v2: fit-time shard count
  if (u64 == 0) {
    return Status::DataLoss("config section has num_shards = 0");
  }
  config->num_shards = u64;
  return Status::OK();
}

std::vector<std::uint8_t> EncodeDataset(const Dataset& data) {
  Writer w;
  const std::size_t n = data.num_objects();
  const std::size_t d = data.num_attributes();
  w.U64(n);
  w.U64(d);
  for (std::size_t a = 0; a < d; ++a) {
    const std::vector<double>& column = data.Column(a);
    for (double v : column) w.F64(v);
  }
  w.U64(d);
  for (const std::string& name : data.attribute_names()) w.Str(name);
  const std::vector<bool>& labels = data.labels();
  w.U64(labels.size());
  for (bool b : labels) w.U8(b ? 1 : 0);
  return w.Take();
}

Status DecodeDataset(Reader* r, Dataset* out) {
  std::uint64_t n = 0;
  std::uint64_t d = 0;
  HICS_RETURN_NOT_OK(r->U64(&n));
  HICS_RETURN_NOT_OK(r->U64(&d));
  // Shape sanity before any allocation: a corrupted count must not drive
  // a multi-gigabyte resize. The payload itself bounds what is possible.
  if (d != 0 && n > r->remaining() / (d * sizeof(double))) {
    return Status::DataLoss("dataset shape " + std::to_string(n) + "x" +
                            std::to_string(d) +
                            " exceeds the section payload");
  }
  std::vector<std::vector<double>> columns(d);
  for (std::uint64_t a = 0; a < d; ++a) {
    columns[a].resize(n);
    if (n * sizeof(double) > r->remaining()) {
      return Status::DataLoss("model file truncated inside dataset column " +
                              std::to_string(a));
    }
    std::memcpy(columns[a].data(), r->Peek(n * sizeof(double)).data(),
                n * sizeof(double));
    HICS_RETURN_NOT_OK(r->Skip(n * sizeof(double), "dataset column"));
  }
  HICS_ASSIGN_OR_RETURN(Dataset data,
                        Dataset::FromColumns(std::move(columns)));
  std::uint64_t name_count = 0;
  HICS_RETURN_NOT_OK(r->U64(&name_count));
  if (name_count != d) {
    return Status::DataLoss("attribute-name count " +
                            std::to_string(name_count) +
                            " does not match " + std::to_string(d) +
                            " attributes");
  }
  std::vector<std::string> names(name_count);
  for (std::string& name : names) HICS_RETURN_NOT_OK(r->Str(&name));
  if (name_count > 0) HICS_RETURN_NOT_OK(data.SetAttributeNames(names));
  std::uint64_t label_count = 0;
  HICS_RETURN_NOT_OK(r->U64(&label_count));
  if (label_count != 0) {
    if (label_count != n) {
      return Status::DataLoss("label count " + std::to_string(label_count) +
                              " does not match " + std::to_string(n) +
                              " objects");
    }
    std::vector<bool> labels(label_count);
    for (std::uint64_t i = 0; i < label_count; ++i) {
      std::uint8_t b = 0;
      HICS_RETURN_NOT_OK(r->U8(&b));
      labels[i] = b != 0;
    }
    HICS_RETURN_NOT_OK(data.SetLabels(std::move(labels)));
  }
  *out = std::move(data);
  return Status::OK();
}

std::vector<std::uint8_t> EncodeSubspaces(
    const std::vector<TrainedSubspace>& subspaces) {
  Writer w;
  w.U64(subspaces.size());
  for (const TrainedSubspace& t : subspaces) {
    w.U64(t.subspace.size());
    for (std::size_t dim : t.subspace) w.U64(dim);
    w.F64(t.contrast);
    w.U64(t.scorer_state.channels.size());
    for (const std::vector<double>& channel : t.scorer_state.channels) {
      w.F64Vec(channel);
    }
  }
  return w.Take();
}

Status DecodeSubspaces(Reader* r, std::vector<TrainedSubspace>* out) {
  std::uint64_t count = 0;
  HICS_RETURN_NOT_OK(r->U64(&count));
  if (count > r->remaining()) {
    return Status::DataLoss("subspace count " + std::to_string(count) +
                            " exceeds the section payload");
  }
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TrainedSubspace t;
    std::uint64_t ndims = 0;
    HICS_RETURN_NOT_OK(r->U64(&ndims));
    if (ndims > r->remaining() / sizeof(std::uint64_t)) {
      return Status::DataLoss("subspace dimensionality " +
                              std::to_string(ndims) +
                              " exceeds the section payload");
    }
    std::vector<std::size_t> dims(ndims);
    for (std::uint64_t j = 0; j < ndims; ++j) {
      std::uint64_t dim = 0;
      HICS_RETURN_NOT_OK(r->U64(&dim));
      dims[j] = dim;
    }
    t.subspace = Subspace(std::move(dims));
    HICS_RETURN_NOT_OK(r->F64(&t.contrast));
    std::uint64_t channels = 0;
    HICS_RETURN_NOT_OK(r->U64(&channels));
    if (channels > r->remaining()) {
      return Status::DataLoss("channel count " + std::to_string(channels) +
                              " exceeds the section payload");
    }
    t.scorer_state.channels.resize(channels);
    for (std::uint64_t c = 0; c < channels; ++c) {
      HICS_RETURN_NOT_OK(r->F64Vec(&t.scorer_state.channels[c]));
    }
    out->push_back(std::move(t));
  }
  return Status::OK();
}

Status ExpectExhausted(const Reader& r, const char* section) {
  if (r.remaining() != 0) {
    return Status::DataLoss(std::string(section) + " section has " +
                            std::to_string(r.remaining()) +
                            " trailing bytes");
  }
  return Status::OK();
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> SerializeHicsModel(const HicsModel& model) {
  const std::array<std::pair<ModelSection, std::vector<std::uint8_t>>, 4>
      sections = {{
          {ModelSection::kConfig, EncodeConfig(model.config())},
          {ModelSection::kDataset, EncodeDataset(model.training_data())},
          {ModelSection::kSubspaces, EncodeSubspaces(model.subspaces())},
          {ModelSection::kScores,
           [&] {
             Writer w;
             w.F64Vec(model.training_scores());
             return w.Take();
           }()},
      }};

  Writer w;
  for (std::size_t i = 0; i < kHicsModelMagicSize; ++i) {
    w.U8(static_cast<std::uint8_t>(kHicsModelMagic[i]));
  }
  w.U32(kHicsModelFormatVersion);
  w.U32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& [id, payload] : sections) {
    w.U32(static_cast<std::uint32_t>(id));
    w.U64(payload.size());
    for (std::uint8_t b : payload) w.U8(b);
    w.U32(Crc32(payload));
  }
  return w.Take();
}

Result<HicsModel> DeserializeHicsModel(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (bytes.size() < kHicsModelMagicSize) {
    return Status::DataLoss("model file truncated: " +
                            std::to_string(bytes.size()) +
                            " bytes is shorter than the magic");
  }
  if (std::memcmp(bytes.data(), kHicsModelMagic, kHicsModelMagicSize) != 0) {
    return Status::InvalidArgument(
        "not a HiCS model file (bad magic)");
  }
  HICS_RETURN_NOT_OK(r.Skip(kHicsModelMagicSize, "magic"));
  std::uint32_t version = 0;
  HICS_RETURN_NOT_OK(r.U32(&version));
  if (version != kHicsModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        "; this build reads version " +
        std::to_string(kHicsModelFormatVersion));
  }
  std::uint32_t section_count = 0;
  HICS_RETURN_NOT_OK(r.U32(&section_count));

  HicsModel::Parts parts;
  bool seen[5] = {false, false, false, false, false};
  for (std::uint32_t s = 0; s < section_count; ++s) {
    std::uint32_t id = 0;
    std::uint64_t size = 0;
    HICS_RETURN_NOT_OK(r.U32(&id));
    HICS_RETURN_NOT_OK(r.U64(&size));
    if (size > r.remaining()) {
      return Status::DataLoss("model file truncated: section " +
                              std::to_string(id) + " claims " +
                              std::to_string(size) + " bytes but only " +
                              std::to_string(r.remaining()) + " remain");
    }
    const std::span<const std::uint8_t> payload = r.Peek(size);
    HICS_RETURN_NOT_OK(r.Skip(size, "section payload"));
    std::uint32_t stored_crc = 0;
    HICS_RETURN_NOT_OK(r.U32(&stored_crc));
    const std::uint32_t actual_crc = Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::DataLoss("checksum mismatch in section " +
                              std::to_string(id) + ": stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(actual_crc));
    }
    if (id < 1 || id > 4) {
      return Status::DataLoss("unknown section id " + std::to_string(id));
    }
    if (seen[id]) {
      return Status::DataLoss("duplicate section id " + std::to_string(id));
    }
    seen[id] = true;

    Reader section(payload);
    switch (static_cast<ModelSection>(id)) {
      case ModelSection::kConfig:
        HICS_RETURN_NOT_OK(DecodeConfig(&section, &parts.config));
        HICS_RETURN_NOT_OK(ExpectExhausted(section, "config"));
        break;
      case ModelSection::kDataset:
        HICS_RETURN_NOT_OK(DecodeDataset(&section, &parts.training_data));
        HICS_RETURN_NOT_OK(ExpectExhausted(section, "dataset"));
        break;
      case ModelSection::kSubspaces:
        HICS_RETURN_NOT_OK(DecodeSubspaces(&section, &parts.subspaces));
        HICS_RETURN_NOT_OK(ExpectExhausted(section, "subspaces"));
        break;
      case ModelSection::kScores:
        HICS_RETURN_NOT_OK(section.F64Vec(&parts.training_scores));
        HICS_RETURN_NOT_OK(ExpectExhausted(section, "scores"));
        break;
    }
  }
  if (r.remaining() != 0) {
    return Status::DataLoss("model file has " +
                            std::to_string(r.remaining()) +
                            " trailing bytes after the last section");
  }
  for (std::uint32_t id = 1; id <= 4; ++id) {
    if (!seen[id]) {
      return Status::DataLoss("model file is missing section " +
                              std::to_string(id));
    }
  }
  return HicsModel::FromParts(std::move(parts));
}

Status SaveHicsModel(const HicsModel& model, const std::string& path) {
  const std::vector<std::uint8_t> bytes = SerializeHicsModel(model);
  const std::string tmp_path = path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + tmp_path +
                           "': " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IOError("write to '" + tmp_path + "' failed: " + err);
    }
    written += static_cast<std::size_t>(n);
  }
  // Durability before visibility: the rename must not publish a file whose
  // bytes are still in flight.
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::IOError("fsync of '" + tmp_path + "' failed: " + err);
  }
  if (::close(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    return Status::IOError("close of '" + tmp_path + "' failed: " + err);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    return Status::IOError("rename '" + tmp_path + "' -> '" + path +
                           "' failed: " + err);
  }
  return Status::OK();
}

Result<HicsModel> LoadHicsModel(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open model file '" + path +
                           "': " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("read of '" + path + "' failed: " + err);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return DeserializeHicsModel(bytes);
}

}  // namespace hics
