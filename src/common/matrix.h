#ifndef HICS_COMMON_MATRIX_H_
#define HICS_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace hics {

/// Small dense row-major matrix of doubles. Sized for PCA-scale work
/// (D x D covariance matrices with D up to a few hundred); not a general
/// linear-algebra library.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double operator()(std::size_t r, std::size_t c) const {
    HICS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    HICS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix Transposed() const;
  Matrix operator*(const Matrix& other) const;

  /// Max |a(i,j) - b(i,j)|; matrices must have equal shape.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigen decomposition of a symmetric matrix via the cyclic Jacobi method.
/// Returns eigenvalues in `*eigenvalues` (descending) and the matching
/// eigenvectors as *columns* of `*eigenvectors`. `a` must be symmetric.
void JacobiEigenSymmetric(const Matrix& a, std::vector<double>* eigenvalues,
                          Matrix* eigenvectors, double tolerance = 1e-12,
                          int max_sweeps = 100);

}  // namespace hics

#endif  // HICS_COMMON_MATRIX_H_
