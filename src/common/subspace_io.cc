#include "common/subspace_io.h"

#include <fstream>
#include <limits>
#include <sstream>

namespace hics {

std::string WriteSubspaces(const std::vector<ScoredSubspace>& subspaces) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# hics subspaces v1: <contrast> <dim> <dim> ...\n";
  for (const ScoredSubspace& s : subspaces) {
    out << s.score;
    for (std::size_t dim : s.subspace) out << ' ' << dim;
    out << '\n';
  }
  return out.str();
}

Result<std::vector<ScoredSubspace>> ParseSubspaces(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::vector<ScoredSubspace> result;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    double score = 0.0;
    if (!(fields >> score)) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": cannot parse score");
    }
    std::vector<std::size_t> dims;
    long long dim = 0;
    while (fields >> dim) {
      if (dim < 0) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": negative dimension");
      }
      dims.push_back(static_cast<std::size_t>(dim));
    }
    if (!fields.eof()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": trailing garbage");
    }
    if (dims.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": empty subspace");
    }
    Subspace subspace(dims);
    if (subspace.size() != dims.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": duplicate dimension");
    }
    result.push_back({std::move(subspace), score});
  }
  return result;
}

Status WriteSubspacesFile(const std::vector<ScoredSubspace>& subspaces,
                          const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "' for writing");
  file << WriteSubspaces(subspaces);
  if (!file) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<ScoredSubspace>> ReadSubspacesFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseSubspaces(buffer.str());
}

}  // namespace hics
