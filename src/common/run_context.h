#ifndef HICS_COMMON_RUN_CONTEXT_H_
#define HICS_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace hics {

/// Deterministic fault injector for robustness testing. Rules are keyed by
/// a *site* string naming an injection point in the library (e.g.
/// "contrast.estimate", "scorer.lof"); production code asks the injector
/// via RunContext::InjectFault(site) before doing fallible work and
/// propagates any returned error through the normal Status paths.
///
/// Two rule kinds, both deterministic:
///  - call-count rules fire on an exact set of 1-based call numbers;
///  - probability rules fire pseudo-randomly per call from a fixed seed
///    (splitmix64 over (seed, site-local call number)), so a given
///    (seed, p) pair always fails the same calls.
///
/// Thread-safe: call counters and tallies are mutex-protected, so injection
/// sites may be hit concurrently from ParallelFor workers. By default
/// counting is by arrival order, which under concurrency makes *which*
/// worker observes the fault scheduling-dependent while the fault count
/// stays exact. Call sites inside parallel loops can instead pass an
/// explicit 1-based *ordinal* (their deterministic position in the logical
/// call sequence — e.g. the subspace index in a ranking pass); rules are
/// then evaluated against the ordinal, so fault placement is bit-identical
/// for every thread count. The search and ranking phases do this, which is
/// what makes degraded runs reproducible under parallelism.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Fires `status` on the n-th call (1-based) at `site`. May be invoked
  /// repeatedly to arm several call numbers for one site.
  void FailNthCall(const std::string& site, std::uint64_t n, Status status);

  /// Fires `status` on calls n, n+1, ... at `site` (every call from the
  /// n-th on). n = 1 means every call fails.
  void FailFromNthCall(const std::string& site, std::uint64_t n,
                       Status status);

  /// Fires `status` on each call at `site` independently with probability
  /// `probability`, derived deterministically from `seed`.
  void FailWithProbability(const std::string& site, double probability,
                           std::uint64_t seed, Status status);

  /// The hook production code calls (via RunContext::InjectFault). Returns
  /// OK when no armed rule fires; advances the site's call counter either
  /// way. Unknown sites are free: no rule, no bookkeeping beyond a counter.
  ///
  /// `ordinal`, when non-zero, is the 1-based deterministic position of
  /// this call in the site's logical sequence; rules are evaluated against
  /// it instead of the arrival count, making placement independent of
  /// thread scheduling. ordinal = 0 keeps the legacy arrival-order
  /// behavior.
  Status OnSite(const std::string& site, std::uint64_t ordinal = 0);

  /// Total calls observed at `site` (fired or not).
  std::uint64_t CallCount(const std::string& site) const;

  /// Number of faults fired at `site`.
  std::uint64_t FiredCount(const std::string& site) const;

  /// Total faults fired across all sites.
  std::uint64_t TotalFired() const;

  /// Per-site fired tallies, for test assertions and reports.
  std::map<std::string, std::uint64_t> FiredTallies() const;

  /// Clears all rules and counters.
  void Reset();

 private:
  struct SiteRules {
    // Exact 1-based call numbers that fail (FailNthCall).
    std::map<std::uint64_t, Status> fail_at;
    // Fail every call >= fail_from (0 = disarmed).
    std::uint64_t fail_from = 0;
    Status fail_from_status;
    // Probability rule (probability <= 0 = disarmed).
    double probability = 0.0;
    std::uint64_t seed = 0;
    Status probability_status;

    std::uint64_t calls = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, SiteRules> sites_;
};

/// Per-run execution context carried through the pipeline: a wall-clock
/// deadline, a cooperative cancellation token, and an optional fault
/// injector. Cheap to copy; copies share the same cancellation flag, so a
/// context handed to worker threads can be cancelled from the outside.
///
/// Long-running loops call ShouldStop()/CheckProgress() at natural
/// checkpoints (between Monte Carlo iterations, lattice levels, subspace
/// scorings) and wind down cooperatively, returning best-so-far results
/// with the interruption recorded in their stats — see RunHicsSearch and
/// RunHicsPipeline.
///
/// A default-constructed RunContext has no deadline, no injector, and is
/// never cancelled, so it adds one branch per checkpoint to fault-free runs.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded context: no deadline, no faults, never cancelled.
  RunContext();

  /// Context whose deadline is `budget` from now. A factory, not a
  /// mutator — `ctx.WithTimeout(...)` on an existing context leaves `ctx`
  /// untouched, hence the nodiscard.
  [[nodiscard]] static RunContext WithTimeout(Clock::duration budget);

  /// Context with an absolute deadline.
  [[nodiscard]] static RunContext WithDeadline(Clock::time_point deadline);

  /// Attaches a fault injector (not owned; must outlive the context).
  /// Returns *this for chaining.
  RunContext& SetFaultInjector(FaultInjector* injector);

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// True once the wall clock has passed the deadline.
  bool DeadlineExpired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Wall-clock budget left before the deadline: Clock::duration::max()
  /// when no deadline is set, zero once it has passed. A probe, not a
  /// reservation — the budget keeps draining while the caller plans.
  Clock::duration RemainingBudget() const {
    if (!has_deadline_) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= deadline_ ? Clock::duration::zero() : deadline_ - now;
  }

  /// Deadline-based admission decision for a unit of work expected to take
  /// `estimated_cost`: OK when the work fits the remaining budget,
  /// Cancelled / DeadlineExceeded when the context is already dead, and a
  /// typed Overloaded status when starting `what` now could not finish
  /// before the deadline — reject-early load shedding instead of starting
  /// work the deadline dooms (or queueing it unboundedly). `what` names
  /// the shed unit in the status message (e.g. "batch of 64 queries").
  Status AdmitWork(Clock::duration estimated_cost,
                   const std::string& what) const;

  /// Requests cooperative cancellation; visible to every copy of this
  /// context. Safe to call from any thread, idempotent.
  void RequestCancellation() const {
    cancel_flag_->store(true, std::memory_order_relaxed);
  }

  bool Cancelled() const {
    return cancel_flag_->load(std::memory_order_relaxed);
  }

  /// Cheap checkpoint predicate for inner loops.
  bool ShouldStop() const { return Cancelled() || DeadlineExpired(); }

  /// Checkpoint returning *why* work must stop: Cancelled beats
  /// DeadlineExceeded; OK when the run may continue.
  Status CheckProgress() const;

  /// Fault-injection hook: OK when no injector is attached or no rule
  /// fires; otherwise the armed Status for `site`. A non-zero `ordinal`
  /// (1-based logical call position) makes rule evaluation deterministic
  /// under parallel execution — see FaultInjector::OnSite.
  Status InjectFault(const std::string& site, std::uint64_t ordinal = 0) const;

  FaultInjector* fault_injector() const { return fault_injector_; }

 private:
  std::shared_ptr<std::atomic<bool>> cancel_flag_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  FaultInjector* fault_injector_ = nullptr;
};

}  // namespace hics

#endif  // HICS_COMMON_RUN_CONTEXT_H_
