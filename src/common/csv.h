#ifndef HICS_COMMON_CSV_H_
#define HICS_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace hics {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// If true, the first non-empty line holds attribute names.
  bool has_header = true;
  /// Index of the label column, or -1 when the file is unlabeled. A label
  /// cell is an outlier iff it parses to a nonzero number or equals
  /// `outlier_label` (case-sensitive).
  int label_column = -1;
  std::string outlier_label = "outlier";
  /// Handling of NaN/inf feature cells.
  NonFinitePolicy non_finite = NonFinitePolicy::kReject;
};

/// Parses CSV text into a dataset. Returns InvalidArgument on ragged rows or
/// non-numeric feature cells.
Result<Dataset> ParseCsv(const std::string& text,
                         const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {});

/// Serializes `dataset` to CSV text (header + rows; a final "label" column
/// is appended when the dataset is labeled).
std::string WriteCsv(const Dataset& dataset, char delimiter = ',');

/// Writes `dataset` to a file at `path`.
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter = ',');

}  // namespace hics

#endif  // HICS_COMMON_CSV_H_
