#ifndef HICS_COMMON_TIMER_H_
#define HICS_COMMON_TIMER_H_

#include <chrono>

namespace hics {

/// Wall-clock stopwatch for runtime experiments.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hics

#endif  // HICS_COMMON_TIMER_H_
