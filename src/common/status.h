#ifndef HICS_COMMON_STATUS_H_
#define HICS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace hics {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kDataLoss,
  /// Load shedding: work was rejected up front because the remaining
  /// deadline budget cannot fit it (see RunContext::AdmitWork). Distinct
  /// from kDeadlineExceeded, which means work *started* and ran out of
  /// time; an overloaded caller should retry later or shrink the batch.
  kOverloaded,
};

/// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Cheap to copy in the OK case.
///
/// Functions that can fail in ways the caller must handle return `Status`
/// (or `Result<T>` when they also produce a value). Programming errors are
/// handled with HICS_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds an OK status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so `return value;` works.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. CHECK-fails on OK status:
  /// an OK Result must carry a value.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    HICS_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Returns the contained value. CHECK-fails if this holds an error.
  const T& ValueOrDie() const& {
    HICS_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    HICS_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    HICS_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates an error status out of the enclosing function.
#define HICS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::hics::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
/// HICS_ASSIGN_OR_RETURN(auto ds, LoadCsv(path));
#define HICS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  HICS_ASSIGN_OR_RETURN_IMPL(                                  \
      HICS_STATUS_CONCAT(_hics_result_, __LINE__), lhs, rexpr)

#define HICS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define HICS_STATUS_CONCAT_INNER(a, b) a##b
#define HICS_STATUS_CONCAT(a, b) HICS_STATUS_CONCAT_INNER(a, b)

}  // namespace hics

#endif  // HICS_COMMON_STATUS_H_
