#include "common/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hics {

Dataset::Dataset(std::size_t num_objects, std::size_t num_attributes)
    : num_objects_(num_objects),
      columns_(num_attributes, std::vector<double>(num_objects, 0.0)) {
  ResetDefaultNames();
}

Result<Dataset> Dataset::FromColumns(
    std::vector<std::vector<double>> columns) {
  Dataset ds;
  if (!columns.empty()) {
    const std::size_t n = columns.front().size();
    for (const auto& col : columns) {
      if (col.size() != n) {
        return Status::InvalidArgument("columns have unequal lengths");
      }
    }
    ds.num_objects_ = n;
  }
  ds.columns_ = std::move(columns);
  ds.ResetDefaultNames();
  return ds;
}

Result<Dataset> Dataset::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Dataset();
  const std::size_t d = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != d) {
      return Status::InvalidArgument("rows have unequal lengths");
    }
  }
  Dataset ds(rows.size(), d);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) ds.columns_[j][i] = rows[i][j];
  }
  return ds;
}

Subspace Dataset::FullSpace() const {
  std::vector<std::size_t> dims(num_attributes());
  for (std::size_t i = 0; i < dims.size(); ++i) dims[i] = i;
  return Subspace(std::move(dims));
}

void Dataset::ProjectObject(std::size_t object, const Subspace& subspace,
                            std::vector<double>* out) const {
  HICS_CHECK(out != nullptr);
  out->clear();
  out->reserve(subspace.size());
  for (std::size_t dim : subspace) out->push_back(Get(object, dim));
}

Dataset Dataset::ProjectSubspace(const Subspace& subspace) const {
  Dataset result;
  result.num_objects_ = num_objects_;
  result.columns_.reserve(subspace.size());
  result.names_.reserve(subspace.size());
  for (std::size_t dim : subspace) {
    HICS_CHECK_LT(dim, num_attributes());
    result.columns_.push_back(columns_[dim]);
    result.names_.push_back(names_[dim]);
  }
  result.labels_ = labels_;
  return result;
}

Status Dataset::SetAttributeNames(std::vector<std::string> names) {
  if (names.size() != num_attributes()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(num_attributes()) +
                                   " names, got " +
                                   std::to_string(names.size()));
  }
  names_ = std::move(names);
  return Status::OK();
}

Status Dataset::SetLabels(std::vector<bool> labels) {
  if (labels.size() != num_objects_) {
    return Status::InvalidArgument(
        "expected " + std::to_string(num_objects_) + " labels, got " +
        std::to_string(labels.size()));
  }
  labels_ = std::move(labels);
  return Status::OK();
}

std::size_t Dataset::CountOutliers() const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), true));
}

void Dataset::AppendRow(const std::vector<double>& row, bool label) {
  HICS_CHECK_EQ(row.size(), num_attributes());
  for (std::size_t j = 0; j < row.size(); ++j) columns_[j].push_back(row[j]);
  if (!labels_.empty() || label) {
    labels_.resize(num_objects_, false);
    labels_.push_back(label);
  }
  ++num_objects_;
}

void Dataset::SlideWindow(std::size_t evict,
                          const std::vector<std::vector<double>>& admitted) {
  HICS_CHECK_LE(evict, num_objects_);
  const std::size_t d = num_attributes();
  for (auto& column : columns_) {
    column.erase(column.begin(),
                 column.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  if (!labels_.empty()) {
    labels_.erase(labels_.begin(),
                  labels_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  num_objects_ -= evict;
  for (const auto& row : admitted) {
    HICS_CHECK_EQ(row.size(), d);
    for (std::size_t j = 0; j < d; ++j) columns_[j].push_back(row[j]);
    if (!labels_.empty()) labels_.push_back(false);
    ++num_objects_;
  }
}

Status Dataset::Validate(bool require_non_constant) const {
  if (num_objects_ < 2) {
    return Status::InvalidArgument(
        "dataset has " + std::to_string(num_objects_) +
        " rows; at least 2 required");
  }
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const std::vector<double>& col = columns_[j];
    bool constant = true;
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (!std::isfinite(col[i])) {
        return Status::InvalidArgument(
            "non-finite value at row " + std::to_string(i) + ", column " +
            std::to_string(j) + " ('" + names_[j] + "')");
      }
      if (col[i] != col.front()) constant = false;
    }
    if (require_non_constant && constant) {
      return Status::InvalidArgument(
          "column " + std::to_string(j) + " ('" + names_[j] +
          "') is constant (" + std::to_string(col.front()) +
          " in every row)");
    }
  }
  return Status::OK();
}

Dataset& Dataset::NormalizeMinMax() {
  for (auto& col : columns_) {
    if (col.empty()) continue;
    auto [mn_it, mx_it] = std::minmax_element(col.begin(), col.end());
    const double mn = *mn_it, mx = *mx_it;
    const double range = mx - mn;
    for (double& v : col) v = range > 0.0 ? (v - mn) / range : 0.0;
  }
  return *this;
}

Dataset& Dataset::Standardize() {
  for (auto& col : columns_) {
    if (col.empty()) continue;
    double mean = 0.0;
    for (double v : col) mean += v;
    mean /= static_cast<double>(col.size());
    double var = 0.0;
    for (double v : col) var += (v - mean) * (v - mean);
    var /= static_cast<double>(col.size());
    const double sd = std::sqrt(var);
    for (double& v : col) v = sd > 0.0 ? (v - mean) / sd : 0.0;
  }
  return *this;
}

void Dataset::ResetDefaultNames() {
  names_.resize(columns_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    // snprintf rather than string concatenation: GCC 12 inlines the
    // string insert/append and raises a spurious -Wrestrict under -mavx2
    // (PR105329), and warnings are errors in CI.
    char name[2 + sizeof(std::size_t) * 3];
    std::snprintf(name, sizeof(name), "a%zu", i);
    names_[i] = name;
  }
}

}  // namespace hics
