#include "common/run_context.h"

#include <utility>

#include "common/check.h"

namespace hics {

namespace {

/// splitmix64: a statistically solid 64-bit mixer, used to derive an
/// independent per-call coin from (seed, call number) without carrying RNG
/// state per site.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double UniformFromBits(std::uint64_t bits) {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultInjector::FailNthCall(const std::string& site, std::uint64_t n,
                                Status status) {
  HICS_CHECK_GE(n, 1u) << "call numbers are 1-based";
  HICS_CHECK(!status.ok()) << "cannot inject an OK status";
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[site].fail_at.emplace(n, std::move(status));
}

void FaultInjector::FailFromNthCall(const std::string& site, std::uint64_t n,
                                    Status status) {
  HICS_CHECK_GE(n, 1u) << "call numbers are 1-based";
  HICS_CHECK(!status.ok()) << "cannot inject an OK status";
  std::lock_guard<std::mutex> lock(mutex_);
  SiteRules& rules = sites_[site];
  rules.fail_from = n;
  rules.fail_from_status = std::move(status);
}

void FaultInjector::FailWithProbability(const std::string& site,
                                        double probability,
                                        std::uint64_t seed, Status status) {
  HICS_CHECK_GT(probability, 0.0);
  HICS_CHECK_LE(probability, 1.0);
  HICS_CHECK(!status.ok()) << "cannot inject an OK status";
  std::lock_guard<std::mutex> lock(mutex_);
  SiteRules& rules = sites_[site];
  rules.probability = probability;
  rules.seed = seed;
  rules.probability_status = std::move(status);
}

Status FaultInjector::OnSite(const std::string& site, std::uint64_t ordinal) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteRules& rules = sites_[site];
  ++rules.calls;
  // Rules match the caller-supplied ordinal when given (deterministic under
  // parallel execution), the arrival count otherwise.
  const std::uint64_t call = ordinal == 0 ? rules.calls : ordinal;

  const auto it = rules.fail_at.find(call);
  if (it != rules.fail_at.end()) {
    ++rules.fired;
    return it->second;
  }
  if (rules.fail_from != 0 && call >= rules.fail_from) {
    ++rules.fired;
    return rules.fail_from_status;
  }
  if (rules.probability > 0.0 &&
      UniformFromBits(Mix64(rules.seed ^ call)) < rules.probability) {
    ++rules.fired;
    return rules.probability_status;
  }
  return Status::OK();
}

std::uint64_t FaultInjector::CallCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::FiredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::uint64_t FaultInjector::TotalFired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [site, rules] : sites_) total += rules.fired;
  return total;
}

std::map<std::string, std::uint64_t> FaultInjector::FiredTallies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> tallies;
  for (const auto& [site, rules] : sites_) {
    if (rules.fired > 0) tallies[site] = rules.fired;
  }
  return tallies;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
}

RunContext::RunContext()
    : cancel_flag_(std::make_shared<std::atomic<bool>>(false)) {}

RunContext RunContext::WithTimeout(Clock::duration budget) {
  return WithDeadline(Clock::now() + budget);
}

RunContext RunContext::WithDeadline(Clock::time_point deadline) {
  RunContext ctx;
  ctx.deadline_ = deadline;
  ctx.has_deadline_ = true;
  return ctx;
}

RunContext& RunContext::SetFaultInjector(FaultInjector* injector) {
  fault_injector_ = injector;
  return *this;
}

Status RunContext::CheckProgress() const {
  if (Cancelled()) return Status::Cancelled("run cancelled by caller");
  if (DeadlineExpired()) {
    return Status::DeadlineExceeded("run deadline expired");
  }
  return Status::OK();
}

Status RunContext::AdmitWork(Clock::duration estimated_cost,
                             const std::string& what) const {
  HICS_RETURN_NOT_OK(CheckProgress());
  if (!has_deadline_) return Status::OK();
  const Clock::duration remaining = RemainingBudget();
  if (estimated_cost <= remaining) return Status::OK();
  const auto to_us = [](Clock::duration d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  };
  return Status::Overloaded(
      what + " rejected: estimated cost " +
      std::to_string(to_us(estimated_cost)) + "us exceeds the remaining " +
      "deadline budget of " + std::to_string(to_us(remaining)) + "us");
}

Status RunContext::InjectFault(const std::string& site,
                               std::uint64_t ordinal) const {
  if (fault_injector_ == nullptr) return Status::OK();
  return fault_injector_->OnSite(site, ordinal);
}

}  // namespace hics
