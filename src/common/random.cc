#include "common/random.h"

#include <cmath>

namespace hics {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  has_gaussian_spare_ = false;
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformUint64(std::uint64_t bound) {
  HICS_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `bound`, eliminating modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  HICS_CHECK_LE(lo, hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  HICS_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  gaussian_spare_ = v * factor;
  has_gaussian_spare_ = true;
  return u * factor;
}

double Rng::Exponential(double rate) {
  HICS_CHECK_GT(rate, 0.0);
  // -log(1 - U) avoids log(0) since UniformDouble() < 1.
  return -std::log(1.0 - UniformDouble()) / rate;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  HICS_CHECK_LE(k, n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + UniformIndex(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace hics
