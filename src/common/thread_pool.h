#ifndef HICS_COMMON_THREAD_POOL_H_
#define HICS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hics {

/// Persistent worker-thread pool behind the ParallelFor family. Workers are
/// spawned once (growing on demand up to the largest parallelism ever
/// requested) and parked on a condition variable between parallel regions,
/// so entering a region costs two lock/notify handshakes instead of thread
/// creation and join — the dominant fixed cost of the old spawn-per-call
/// scheme when regions are entered thousands of times per run (one per
/// lattice level, one per ranked subspace, ...).
///
/// Execution model: one region runs at a time (concurrent Run() calls from
/// different threads are serialized internally). The calling thread
/// participates as slot 0; pool workers claim slots 1..parallelism-1. Slot
/// ids are dense, stable for the duration of one task invocation, and
/// distinct across concurrently running slots — which is what per-worker
/// scratch indexing needs (see ParallelForWorker).
///
/// Nested regions are not run on the pool: a Run() issued from inside a
/// running slot executes inline on that thread (see InParallelRegion), so
/// outer-parallel callers compose with inner-parallel callees without
/// deadlock or oversubscription.
class ThreadPool {
 public:
  /// Upper bound on slots per region (1 caller + kMaxParallelism-1 pool
  /// workers). Requests beyond it are clamped; far above any real core
  /// count, it only bounds pathological num_threads values.
  static constexpr std::size_t kMaxParallelism = 256;

  /// Creates an empty pool; workers are spawned on demand by Run().
  ThreadPool() = default;

  /// Joins all workers. Must not race with an active Run().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes task(slot) for every slot in [0, parallelism), each slot on a
  /// distinct thread (slot 0 on the calling thread), and returns when every
  /// slot has finished. `task` must not throw. parallelism == 0 is a no-op;
  /// parallelism == 1 and nested calls run inline.
  void Run(std::size_t parallelism,
           const std::function<void(std::size_t)>& task);

  /// Number of worker threads currently alive (grows on demand, never
  /// shrinks before destruction).
  std::size_t num_workers() const;

  /// True while the calling thread is executing inside a Run() region
  /// (a worker slot or the caller's slot 0). The Parallel* entry points use
  /// this to degrade nested parallel sections to inline execution.
  static bool InParallelRegion();

  /// The process-wide pool used by ParallelFor/ParallelTryFor.
  static ThreadPool& Global();

 private:
  // One parallel region; lives on the caller's stack for its duration.
  struct Job {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t parallelism = 0;
    std::size_t next_slot = 1;    // next slot to hand out (0 = caller)
    std::size_t outstanding = 0;  // worker slots still running
  };

  void WorkerLoop();
  void EnsureWorkersLocked(std::size_t target);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new job or shutdown
  std::condition_variable done_cv_;  // caller: all worker slots finished
  std::mutex run_mutex_;             // serializes regions
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;  // currently published region, nullptr when idle
  bool shutting_down_ = false;
};

}  // namespace hics

#endif  // HICS_COMMON_THREAD_POOL_H_
