#ifndef HICS_COMMON_RANDOM_H_
#define HICS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace hics {

/// Deterministic pseudo-random number generator used by every randomized
/// component in the library (slice sampling, synthetic data, feature
/// bagging, ...). Wraps a xoshiro256** engine; all algorithms take an
/// explicit seed so experiments are reproducible.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 state expansion.
  void Seed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t UniformUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Uniform size_t index in [0, n).
  std::size_t UniformIndex(std::size_t n) {
    return static_cast<std::size_t>(UniformUint64(n));
  }

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential deviate with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    HICS_CHECK(values != nullptr);
    for (std::size_t i = values->size(); i > 1; --i) {
      std::size_t j = UniformIndex(i);
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates). Requires k <= n. Result order is random.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent child generator; useful to give each Monte Carlo
  /// iteration or worker its own stream.
  Rng Split();

 private:
  std::uint64_t state_[4];
  // Cached second value from the polar method, NaN when absent.
  double gaussian_spare_;
  bool has_gaussian_spare_ = false;
};

}  // namespace hics

#endif  // HICS_COMMON_RANDOM_H_
