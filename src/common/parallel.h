#ifndef HICS_COMMON_PARALLEL_H_
#define HICS_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace hics {

/// Runs fn(i) for every i in [begin, end) using up to `num_threads` worker
/// slots of the persistent process-wide ThreadPool. num_threads = 0 means
/// hardware concurrency; with num_threads == 1 (or when called from inside
/// another parallel region) the loop runs inline on the calling thread.
/// `fn` must be safe to call concurrently for distinct indices.
///
/// Work distribution is chunked self-scheduling: slots repeatedly claim
/// contiguous chunks off a shared cursor, so uneven per-index cost (kNN
/// queries, varying subspace dimensionality) balances automatically.
/// Iteration order within a chunk is ascending; across chunks unspecified.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn);

/// ParallelFor variant for per-thread scratch: fn(i, worker_id) with
/// worker_id a dense slot index in [0, ParallelWorkerCount(end - begin,
/// num_threads)). Concurrent calls always see distinct worker ids, so
/// indexing a pre-sized scratch array by worker_id is race-free; the
/// inline path always uses worker_id 0.
void ParallelForWorker(
    std::size_t begin, std::size_t end, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// Fallible variant: runs fn(i) like ParallelFor but stops scheduling new
/// iterations as soon as any call returns a non-OK Status, and returns the
/// error of the *smallest failing index* — deterministic regardless of
/// thread count or scheduling. Iterations already in flight on other
/// workers finish; iterations never started are skipped. Returns OK when
/// every executed call returned OK.
///
/// Unlike ParallelFor, distribution is static contiguous (slot w owns the
/// w-th chunk): an error makes the failing slot abandon the rest of its own
/// chunk immediately, which keeps the post-error wind-down window bounded
/// and predictable.
///
/// `should_stop`, when provided, is polled before each iteration; returning
/// true makes remaining iterations wind down without producing an error
/// (the caller knows why it asked to stop — see RunContext).
Status ParallelTryFor(std::size_t begin, std::size_t end,
                      std::size_t num_threads,
                      const std::function<Status(std::size_t)>& fn,
                      const std::function<bool()>& should_stop = nullptr);

/// ParallelTryFor with worker slot ids, for fallible loops that reuse
/// per-thread scratch (the HiCS contrast lattice). Same error and
/// wind-down semantics as ParallelTryFor; same worker_id contract as
/// ParallelForWorker.
Status ParallelTryForWorker(
    std::size_t begin, std::size_t end, std::size_t num_threads,
    const std::function<Status(std::size_t, std::size_t)>& fn,
    const std::function<bool()>& should_stop = nullptr);

/// Number of distinct worker slots the Parallel*Worker entry points may use
/// for a loop of `count` iterations at the given num_threads setting (>= 1;
/// callers size per-worker scratch arrays with this).
std::size_t ParallelWorkerCount(std::size_t count, std::size_t num_threads);

/// Default worker count: hardware concurrency, at least 1.
std::size_t DefaultNumThreads();

}  // namespace hics

#endif  // HICS_COMMON_PARALLEL_H_
