#ifndef HICS_COMMON_PARALLEL_H_
#define HICS_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace hics {

/// Runs fn(i) for every i in [begin, end) using up to `num_threads` worker
/// threads (static contiguous partitioning). With num_threads <= 1 the
/// loop runs inline on the calling thread. `fn` must be safe to call
/// concurrently for distinct indices; iteration order within a worker is
/// ascending, across workers unspecified.
///
/// Deliberately minimal: the library's parallel sections are coarse
/// (one contrast estimate / one kNN query per index), so spawn-per-call
/// threads beat the complexity of a persistent pool.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn);

/// Default worker count: hardware concurrency, at least 1.
std::size_t DefaultNumThreads();

}  // namespace hics

#endif  // HICS_COMMON_PARALLEL_H_
