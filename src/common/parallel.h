#ifndef HICS_COMMON_PARALLEL_H_
#define HICS_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace hics {

/// Runs fn(i) for every i in [begin, end) using up to `num_threads` worker
/// threads (static contiguous partitioning). num_threads = 0 means
/// hardware concurrency; with num_threads == 1 the loop runs inline on the
/// calling thread. `fn` must be safe to call concurrently for distinct
/// indices; iteration order within a worker is ascending, across workers
/// unspecified.
///
/// Deliberately minimal: the library's parallel sections are coarse
/// (one contrast estimate / one kNN query per index), so spawn-per-call
/// threads beat the complexity of a persistent pool.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn);

/// Fallible variant: runs fn(i) like ParallelFor but stops scheduling new
/// iterations as soon as any call returns a non-OK Status, and returns the
/// error of the *smallest failing index* — deterministic regardless of
/// thread count or scheduling. Iterations already in flight on other
/// workers finish; iterations never started are skipped. Returns OK when
/// every executed call returned OK.
///
/// `should_stop`, when provided, is polled before each iteration; returning
/// true makes remaining iterations wind down without producing an error
/// (the caller knows why it asked to stop — see RunContext).
Status ParallelTryFor(std::size_t begin, std::size_t end,
                      std::size_t num_threads,
                      const std::function<Status(std::size_t)>& fn,
                      const std::function<bool()>& should_stop = nullptr);

/// Default worker count: hardware concurrency, at least 1.
std::size_t DefaultNumThreads();

}  // namespace hics

#endif  // HICS_COMMON_PARALLEL_H_
