#ifndef HICS_COMMON_DATASET_H_
#define HICS_COMMON_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/subspace.h"

namespace hics {

/// What a loader does with a feature cell that parses to NaN or +/-inf.
/// strtod accepts "nan"/"inf" spellings, and letting them through silently
/// poisons contrast and LOF math downstream, so loaders default to
/// rejecting the file with an error naming the offending line.
enum class NonFinitePolicy {
  kReject,   ///< fail parsing with line/column in the error (default)
  kDropRow,  ///< silently drop any row containing a non-finite cell
  kAllow,    ///< keep the value (caller promises to Dataset::Validate())
};

/// In-memory real-valued dataset: N objects x D attributes, stored
/// column-major (one contiguous vector per attribute) because contrast
/// estimation and slicing scan single attributes. Optionally carries binary
/// ground-truth outlier labels for evaluation.
class Dataset {
 public:
  /// Empty dataset (0 x 0).
  Dataset() = default;

  /// Creates an all-zero dataset with the given shape.
  Dataset(std::size_t num_objects, std::size_t num_attributes);

  /// Builds a dataset from column vectors; all columns must have equal
  /// length. Attribute names default to "a0", "a1", ...
  static Result<Dataset> FromColumns(std::vector<std::vector<double>> columns);

  /// Builds a dataset from row vectors; all rows must have equal length.
  static Result<Dataset> FromRows(
      const std::vector<std::vector<double>>& rows);

  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_attributes() const { return columns_.size(); }

  /// Full attribute set {0, ..., D-1}.
  Subspace FullSpace() const;

  double Get(std::size_t object, std::size_t attribute) const {
    HICS_DCHECK(object < num_objects_);
    HICS_DCHECK(attribute < columns_.size());
    return columns_[attribute][object];
  }
  void Set(std::size_t object, std::size_t attribute, double value) {
    HICS_DCHECK(object < num_objects_);
    HICS_DCHECK(attribute < columns_.size());
    columns_[attribute][object] = value;
  }

  const std::vector<double>& Column(std::size_t attribute) const {
    HICS_DCHECK(attribute < columns_.size());
    return columns_[attribute];
  }

  /// Gathers one object's values restricted to `subspace`, appended to
  /// `*out` (cleared first). Hot path of subspace-restricted distance
  /// computations.
  void ProjectObject(std::size_t object, const Subspace& subspace,
                     std::vector<double>* out) const;

  /// Returns a new dataset containing only the attributes in `subspace`
  /// (labels preserved).
  Dataset ProjectSubspace(const Subspace& subspace) const;

  /// Attribute names (size D). Settable for nicer reports.
  const std::vector<std::string>& attribute_names() const { return names_; }
  Status SetAttributeNames(std::vector<std::string> names);

  /// Ground-truth outlier labels. Empty if unlabeled; otherwise size N with
  /// true = outlier.
  bool has_labels() const { return !labels_.empty(); }
  const std::vector<bool>& labels() const { return labels_; }
  Status SetLabels(std::vector<bool> labels);
  std::size_t CountOutliers() const;

  /// Appends one row (size must be D; label optional when labeled).
  void AppendRow(const std::vector<double>& row, bool label = false);

  /// Sliding-window mutation: drops the `evict` OLDEST rows (object ids
  /// 0 .. evict-1; surviving rows shift down by `evict`) and appends
  /// `admitted` rows (each of size D, labeled false when labels exist) at
  /// the tail, in order. O((N + |admitted|) * D) memmove — no
  /// reallocation churn beyond vector growth. This is the one sanctioned
  /// in-place mutation of a dataset that prepared state exists for, and
  /// only the streaming plane (engine/streaming_dataset.h) may use it
  /// that way: it rebuilds/invalidates every derived artifact under its
  /// epoch protocol before any consumer can observe the new rows.
  void SlideWindow(std::size_t evict,
                   const std::vector<std::vector<double>>& admitted);

  /// Sanity-checks the dataset before analysis, reporting the first
  /// violation with its row/column:
  ///  - every value finite (NaN/inf poison contrast and LOF math),
  ///  - at least 2 rows (every estimator needs a two-sample comparison),
  ///  - no constant attribute when `require_non_constant` (a constant
  ///    column has no marginal distribution to deviate from and yields
  ///    degenerate slices).
  /// Loaders run the finite check themselves (see CsvOptions /
  /// ArffOptions); call this on programmatically built datasets too.
  Status Validate(bool require_non_constant = true) const;

  /// Min-max normalizes every attribute to [0, 1] in place. Constant
  /// attributes map to 0. Returns *this for chaining.
  Dataset& NormalizeMinMax();

  /// Z-score standardizes every attribute in place (constant attributes map
  /// to 0). Returns *this for chaining.
  Dataset& Standardize();

 private:
  std::size_t num_objects_ = 0;
  std::vector<std::vector<double>> columns_;
  std::vector<std::string> names_;
  std::vector<bool> labels_;

  void ResetDefaultNames();
};

}  // namespace hics

#endif  // HICS_COMMON_DATASET_H_
