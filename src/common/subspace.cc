#include "common/subspace.h"

#include <algorithm>
#include <sstream>

namespace hics {

Subspace::Subspace(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
  std::sort(dims_.begin(), dims_.end());
  dims_.erase(std::unique(dims_.begin(), dims_.end()), dims_.end());
}

bool Subspace::Contains(std::size_t dim) const {
  return std::binary_search(dims_.begin(), dims_.end(), dim);
}

bool Subspace::ContainsAll(const Subspace& other) const {
  return std::includes(dims_.begin(), dims_.end(), other.dims_.begin(),
                       other.dims_.end());
}

Subspace Subspace::With(std::size_t dim) const {
  HICS_CHECK(!Contains(dim)) << "dimension " << dim << " already present";
  Subspace result = *this;
  result.dims_.insert(
      std::lower_bound(result.dims_.begin(), result.dims_.end(), dim), dim);
  return result;
}

Subspace Subspace::Without(std::size_t dim) const {
  HICS_CHECK(Contains(dim)) << "dimension " << dim << " not present";
  Subspace result = *this;
  result.dims_.erase(
      std::lower_bound(result.dims_.begin(), result.dims_.end(), dim));
  return result;
}

Subspace Subspace::AprioriJoin(const Subspace& other, bool* ok) const {
  HICS_CHECK(ok != nullptr);
  *ok = false;
  if (dims_.size() != other.dims_.size() || dims_.empty()) return Subspace();
  const std::size_t d = dims_.size();
  for (std::size_t i = 0; i + 1 < d; ++i) {
    if (dims_[i] != other.dims_[i]) return Subspace();
  }
  if (dims_[d - 1] >= other.dims_[d - 1]) return Subspace();
  Subspace result = *this;
  result.dims_.push_back(other.dims_[d - 1]);
  *ok = true;
  return result;
}

std::vector<Subspace> Subspace::Parents() const {
  std::vector<Subspace> result;
  result.reserve(dims_.size());
  for (std::size_t dim : dims_) result.push_back(Without(dim));
  return result;
}

std::string Subspace::ToString() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "}";
  return out.str();
}

std::size_t SubspaceHash::operator()(const Subspace& s) const {
  // FNV-1a over the dimension indices.
  std::size_t h = 1469598103934665603ULL;
  for (std::size_t dim : s) {
    h ^= dim + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

void SortByScoreDescending(std::vector<ScoredSubspace>* subspaces) {
  HICS_CHECK(subspaces != nullptr);
  std::sort(subspaces->begin(), subspaces->end(),
            [](const ScoredSubspace& a, const ScoredSubspace& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.subspace < b.subspace;
            });
}

void KeepTopK(std::vector<ScoredSubspace>* subspaces, std::size_t k) {
  HICS_CHECK(subspaces != nullptr);
  SortByScoreDescending(subspaces);
  if (subspaces->size() > k) subspaces->resize(k);
}

}  // namespace hics
