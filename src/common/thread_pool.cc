#include "common/thread_pool.h"

#include <algorithm>

namespace hics {

namespace {

thread_local bool tls_in_parallel_region = false;

// RAII guard for the nested-region flag; restores the previous value so a
// slot that finishes leaves the thread in the state it found it (the flag
// stays set across nested inline regions).
class ScopedRegionFlag {
 public:
  ScopedRegionFlag() : previous_(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~ScopedRegionFlag() { tls_in_parallel_region = previous_; }
  ScopedRegionFlag(const ScopedRegionFlag&) = delete;
  ScopedRegionFlag& operator=(const ScopedRegionFlag&) = delete;

 private:
  bool previous_;
};

}  // namespace

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

std::size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureWorkersLocked(std::size_t target) {
  target = std::min(target, kMaxParallelism - 1);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Run(std::size_t parallelism,
                     const std::function<void(std::size_t)>& task) {
  parallelism = std::min(parallelism, kMaxParallelism);
  if (parallelism == 0) return;
  if (parallelism == 1 || tls_in_parallel_region) {
    ScopedRegionFlag region;
    for (std::size_t slot = 0; slot < parallelism; ++slot) task(slot);
    return;
  }

  // Regions are serialized: every pool worker is parked when a job is
  // published, so all parallelism-1 worker slots are guaranteed to be
  // claimed and `outstanding` to reach zero.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  Job job;
  job.task = &task;
  job.parallelism = parallelism;
  job.next_slot = 1;
  job.outstanding = parallelism - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureWorkersLocked(parallelism - 1);
    job_ = &job;
  }
  work_cv_.notify_all();

  {
    ScopedRegionFlag region;
    task(0);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&job] { return job.outstanding == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutting_down_ ||
             (job_ != nullptr && job_->next_slot < job_->parallelism);
    });
    if (shutting_down_) return;
    Job* job = job_;
    const std::size_t slot = job->next_slot++;
    // The worker that claims the last slot unpublishes the job so parked
    // threads stop re-checking it; finishers below may still hold `job`
    // (it outlives them: Run() waits for outstanding == 0 before
    // returning).
    if (job->next_slot >= job->parallelism) job_ = nullptr;
    lock.unlock();
    {
      ScopedRegionFlag region;
      (*job->task)(slot);
    }
    lock.lock();
    if (--job->outstanding == 0) done_cv_.notify_all();
  }
}

}  // namespace hics
