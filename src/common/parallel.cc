#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"

namespace hics {

void ParallelFor(std::size_t begin, std::size_t end, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn) {
  HICS_CHECK_LE(begin, end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t workers = std::min(num_threads, count);
  const std::size_t chunk = (count + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (std::thread& t : threads) t.join();
}

std::size_t DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace hics
