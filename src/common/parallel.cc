#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace hics {

void ParallelFor(std::size_t begin, std::size_t end, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn) {
  HICS_CHECK_LE(begin, end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  if (num_threads == 0) num_threads = DefaultNumThreads();
  if (num_threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t workers = std::min(num_threads, count);
  const std::size_t chunk = (count + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (std::thread& t : threads) t.join();
}

Status ParallelTryFor(std::size_t begin, std::size_t end,
                      std::size_t num_threads,
                      const std::function<Status(std::size_t)>& fn,
                      const std::function<bool()>& should_stop) {
  HICS_CHECK_LE(begin, end);
  const std::size_t count = end - begin;
  if (count == 0) return Status::OK();
  if (num_threads == 0) num_threads = DefaultNumThreads();

  // First error wins by *index*, not by wall-clock arrival. A worker skips
  // an iteration only when its index is at or above the smallest failing
  // index recorded so far; everything below a known failure keeps running
  // and may replace it with an earlier one. The globally smallest failing
  // index can therefore never be starved (all indices before it succeed,
  // so its worker always reaches it), which makes the returned error
  // deterministic under any thread count or scheduling.
  std::mutex error_mutex;
  Status first_error;
  std::atomic<std::size_t> first_error_index{
      std::numeric_limits<std::size_t>::max()};
  std::atomic<bool> stop{false};  // cooperative wind-down, not an error

  auto record_error = [&](std::size_t index, Status status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (index < first_error_index.load(std::memory_order_relaxed)) {
      first_error = std::move(status);
      first_error_index.store(index, std::memory_order_relaxed);
    }
  };
  auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i >= first_error_index.load(std::memory_order_relaxed)) return;
      if (stop.load(std::memory_order_relaxed)) return;
      if (should_stop && should_stop()) {
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      Status st = fn(i);
      if (!st.ok()) {
        record_error(i, std::move(st));
        return;
      }
    }
  };

  if (num_threads <= 1 || count == 1) {
    run_range(begin, end);
    return first_error;
  }

  const std::size_t workers = std::min(num_threads, count);
  const std::size_t chunk = (count + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &run_range] { run_range(lo, hi); });
  }
  for (std::thread& t : threads) t.join();
  return first_error;
}

std::size_t DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace hics
