#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace hics {

namespace {

std::size_t ResolveThreads(std::size_t num_threads) {
  return num_threads == 0 ? DefaultNumThreads() : num_threads;
}

}  // namespace

std::size_t ParallelWorkerCount(std::size_t count, std::size_t num_threads) {
  std::size_t workers = std::min(ResolveThreads(num_threads),
                                 ThreadPool::kMaxParallelism);
  workers = std::min(workers, std::max<std::size_t>(count, 1));
  return std::max<std::size_t>(workers, 1);
}

void ParallelForWorker(
    std::size_t begin, std::size_t end, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  HICS_CHECK_LE(begin, end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  const std::size_t workers = ParallelWorkerCount(count, num_threads);
  if (workers <= 1 || count == 1 || ThreadPool::InParallelRegion()) {
    for (std::size_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  // Chunked self-scheduling: ~8 chunks per slot amortizes the shared-cursor
  // contention while still balancing uneven per-index cost.
  const std::size_t chunk = std::max<std::size_t>(1, count / (workers * 8));
  std::atomic<std::size_t> cursor{begin};
  ThreadPool::Global().Run(workers, [&](std::size_t slot) {
    for (;;) {
      const std::size_t lo =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) fn(i, slot);
    }
  });
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn) {
  ParallelForWorker(begin, end, num_threads,
                    [&fn](std::size_t i, std::size_t) { fn(i); });
}

Status ParallelTryForWorker(
    std::size_t begin, std::size_t end, std::size_t num_threads,
    const std::function<Status(std::size_t, std::size_t)>& fn,
    const std::function<bool()>& should_stop) {
  HICS_CHECK_LE(begin, end);
  const std::size_t count = end - begin;
  if (count == 0) return Status::OK();

  // First error wins by *index*, not by wall-clock arrival. A worker skips
  // an iteration only when its index is at or above the smallest failing
  // index recorded so far; everything below a known failure keeps running
  // and may replace it with an earlier one. The globally smallest failing
  // index can therefore never be starved (all indices before it succeed,
  // so its worker always reaches it), which makes the returned error
  // deterministic under any thread count or scheduling.
  std::mutex error_mutex;
  Status first_error;
  std::atomic<std::size_t> first_error_index{
      std::numeric_limits<std::size_t>::max()};
  std::atomic<bool> stop{false};  // cooperative wind-down, not an error

  auto record_error = [&](std::size_t index, Status status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (index < first_error_index.load(std::memory_order_relaxed)) {
      first_error = std::move(status);
      first_error_index.store(index, std::memory_order_relaxed);
    }
  };
  auto run_range = [&](std::size_t lo, std::size_t hi, std::size_t slot) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i >= first_error_index.load(std::memory_order_relaxed)) return;
      if (stop.load(std::memory_order_relaxed)) return;
      if (should_stop && should_stop()) {
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      Status st = fn(i, slot);
      if (!st.ok()) {
        record_error(i, std::move(st));
        return;
      }
    }
  };

  const std::size_t workers = ParallelWorkerCount(count, num_threads);
  if (workers <= 1 || count == 1 || ThreadPool::InParallelRegion()) {
    run_range(begin, end, 0);
    return first_error;
  }

  // Static contiguous chunks, one per slot: slot w owns
  // [begin + w*chunk, begin + (w+1)*chunk). An error therefore stops the
  // rest of the failing slot's own range immediately (see header).
  const std::size_t chunk = (count + workers - 1) / workers;
  ThreadPool::Global().Run(workers, [&](std::size_t slot) {
    const std::size_t lo = begin + slot * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo < hi) run_range(lo, hi, slot);
  });
  return first_error;
}

Status ParallelTryFor(std::size_t begin, std::size_t end,
                      std::size_t num_threads,
                      const std::function<Status(std::size_t)>& fn,
                      const std::function<bool()>& should_stop) {
  return ParallelTryForWorker(
      begin, end, num_threads,
      [&fn](std::size_t i, std::size_t) { return fn(i); }, should_stop);
}

std::size_t DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace hics
