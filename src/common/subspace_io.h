#ifndef HICS_COMMON_SUBSPACE_IO_H_
#define HICS_COMMON_SUBSPACE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/subspace.h"

namespace hics {

/// Text serialization of scored subspace lists, so the two halves of the
/// decoupled pipeline can run in separate processes / sessions: run the
/// (expensive) subspace search once, save the result, and re-rank with
/// different scorers later without repeating the search.
///
/// Format: one subspace per line, "<score> <dim> <dim> ...", '#' comments
/// and blank lines ignored. Scores use max_digits10, so a round trip is
/// bit-exact.

/// Serializes the list (keeps order).
std::string WriteSubspaces(const std::vector<ScoredSubspace>& subspaces);

/// Parses a serialized list. Fails on malformed lines, duplicate
/// dimensions within a line, or empty subspaces.
Result<std::vector<ScoredSubspace>> ParseSubspaces(const std::string& text);

/// File variants.
Status WriteSubspacesFile(const std::vector<ScoredSubspace>& subspaces,
                          const std::string& path);
Result<std::vector<ScoredSubspace>> ReadSubspacesFile(
    const std::string& path);

}  // namespace hics

#endif  // HICS_COMMON_SUBSPACE_IO_H_
