#include "common/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hics {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, delimiter)) cells.push_back(cell);
  // A trailing delimiter means a final empty cell that getline drops.
  if (!line.empty() && line.back() == delimiter) cells.emplace_back();
  return cells;
}

std::string Trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

bool ParseDouble(const std::string& text, double* out) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(trimmed.c_str(), &end);
  return end == trimmed.c_str() + trimmed.size();
}

}  // namespace

Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options) {
  std::istringstream stream(text);
  std::string line;
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
  std::vector<bool> labels;
  bool saw_header = !options.has_header;
  std::size_t line_number = 0;

  while (std::getline(stream, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = SplitLine(line, options.delimiter);
    if (!saw_header) {
      for (auto& cell : cells) cell = Trim(cell);
      header = std::move(cells);
      saw_header = true;
      continue;
    }
    const int label_col = options.label_column;
    if (label_col >= 0 && static_cast<std::size_t>(label_col) >= cells.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": label column out of range");
    }
    std::vector<double> row;
    row.reserve(cells.size());
    bool label = false;
    bool drop_row = false;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (label_col >= 0 && i == static_cast<std::size_t>(label_col)) {
        double numeric = 0.0;
        if (ParseDouble(cells[i], &numeric)) {
          label = numeric != 0.0;
        } else {
          label = Trim(cells[i]) == options.outlier_label;
        }
        continue;
      }
      double value = 0.0;
      if (!ParseDouble(cells[i], &value)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ", column " +
            std::to_string(i) + ": cannot parse '" + Trim(cells[i]) +
            "' as a number");
      }
      if (!std::isfinite(value) &&
          options.non_finite != NonFinitePolicy::kAllow) {
        if (options.non_finite == NonFinitePolicy::kReject) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ", column " +
              std::to_string(i) + ": non-finite value '" + Trim(cells[i]) +
              "' (set CsvOptions::non_finite to kDropRow or kAllow to "
              "accept)");
        }
        drop_row = true;
        break;
      }
      row.push_back(value);
    }
    if (drop_row) continue;
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": ragged row");
    }
    rows.push_back(std::move(row));
    labels.push_back(label);
  }

  HICS_ASSIGN_OR_RETURN(Dataset ds, Dataset::FromRows(rows));
  if (options.label_column >= 0) {
    HICS_RETURN_NOT_OK(ds.SetLabels(std::move(labels)));
  }
  if (!header.empty()) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (options.label_column >= 0 &&
          i == static_cast<std::size_t>(options.label_column)) {
        continue;
      }
      names.push_back(header[i]);
    }
    if (names.size() == ds.num_attributes()) {
      HICS_RETURN_NOT_OK(ds.SetAttributeNames(std::move(names)));
    }
  }
  return ds;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string WriteCsv(const Dataset& dataset, char delimiter) {
  std::ostringstream out;
  // max_digits10 so written values parse back bit-exact.
  out.precision(17);
  const auto& names = dataset.attribute_names();
  for (std::size_t j = 0; j < names.size(); ++j) {
    if (j > 0) out << delimiter;
    out << names[j];
  }
  if (dataset.has_labels()) {
    if (!names.empty()) out << delimiter;
    out << "label";
  }
  out << "\n";
  for (std::size_t i = 0; i < dataset.num_objects(); ++i) {
    for (std::size_t j = 0; j < dataset.num_attributes(); ++j) {
      if (j > 0) out << delimiter;
      out << dataset.Get(i, j);
    }
    if (dataset.has_labels()) {
      if (dataset.num_attributes() > 0) out << delimiter;
      out << (dataset.labels()[i] ? 1 : 0);
    }
    out << "\n";
  }
  return out.str();
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "' for writing");
  file << WriteCsv(dataset, delimiter);
  if (!file) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace hics
