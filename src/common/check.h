#ifndef HICS_COMMON_CHECK_H_
#define HICS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hics::internal_check {

/// Collects a failure message via operator<< and aborts on destruction.
/// Used only by the HICS_CHECK macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "HICS_CHECK failure: (" << condition << ") at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Captures the two operands of a failed comparison so the abort message
/// shows the actual values, e.g. "(3 vs. 5)". Operands are evaluated exactly
/// once; non-streamable types print as "<unprintable>".
class OperandCapture {
 public:
  template <typename A, typename B, typename Cmp>
  bool Compare(const A& a, const B& b, Cmp cmp) {
    if (cmp(a, b)) return true;
    std::ostringstream os;
    os << "(";
    Print(os, a);
    os << " vs. ";
    Print(os, b);
    os << ")";
    text_ = os.str();
    return false;
  }

  const std::string& text() const { return text_; }

 private:
  template <typename T>
  static void Print(std::ostringstream& os, const T& value) {
    if constexpr (requires(std::ostringstream& s, const T& v) { s << v; }) {
      os << value;
    } else {
      os << "<unprintable>";
    }
  }

  std::string text_;
};

}  // namespace hics::internal_check

/// Aborts with a message if `condition` is false. For programming errors /
/// invariant violations, not for recoverable failures (use Status for those).
#define HICS_CHECK(condition)                                         \
  if (condition) {                                                    \
  } else                                                              \
    ::hics::internal_check::CheckFailureStream(#condition, __FILE__,  \
                                               __LINE__)

/// Comparison checks that log the actual operand values on failure, e.g.
///   HICS_CHECK failure: (rows.size() == n) (3 vs. 5) at foo.cc:42
/// so crash reports (fault-injection runs included) are actionable without
/// a debugger. Operands are evaluated exactly once.
#define HICS_CHECK_OP_(op, a, b)                                              \
  if (::hics::internal_check::OperandCapture _hics_operands;                  \
      _hics_operands.Compare(                                                 \
          (a), (b),                                                           \
          [](const auto& _x, const auto& _y) { return _x op _y; })) {         \
  } else                                                                      \
    ::hics::internal_check::CheckFailureStream(#a " " #op " " #b, __FILE__,   \
                                               __LINE__)                      \
        << _hics_operands.text() << " "

#define HICS_CHECK_EQ(a, b) HICS_CHECK_OP_(==, a, b)
#define HICS_CHECK_NE(a, b) HICS_CHECK_OP_(!=, a, b)
#define HICS_CHECK_LT(a, b) HICS_CHECK_OP_(<, a, b)
#define HICS_CHECK_LE(a, b) HICS_CHECK_OP_(<=, a, b)
#define HICS_CHECK_GT(a, b) HICS_CHECK_OP_(>, a, b)
#define HICS_CHECK_GE(a, b) HICS_CHECK_OP_(>=, a, b)

/// Cheap assert in debug builds, no-op in release builds.
#ifndef NDEBUG
#define HICS_DCHECK(condition) HICS_CHECK(condition)
#else
#define HICS_DCHECK(condition) \
  if (true) {                  \
  } else                       \
    ::hics::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)
#endif

#endif  // HICS_COMMON_CHECK_H_
