#ifndef HICS_COMMON_CHECK_H_
#define HICS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hics::internal_check {

/// Collects a failure message via operator<< and aborts on destruction.
/// Used only by the HICS_CHECK macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "HICS_CHECK failure: (" << condition << ") at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace hics::internal_check

/// Aborts with a message if `condition` is false. For programming errors /
/// invariant violations, not for recoverable failures (use Status for those).
#define HICS_CHECK(condition)                                         \
  if (condition) {                                                    \
  } else                                                              \
    ::hics::internal_check::CheckFailureStream(#condition, __FILE__,  \
                                               __LINE__)

#define HICS_CHECK_EQ(a, b) HICS_CHECK((a) == (b))
#define HICS_CHECK_NE(a, b) HICS_CHECK((a) != (b))
#define HICS_CHECK_LT(a, b) HICS_CHECK((a) < (b))
#define HICS_CHECK_LE(a, b) HICS_CHECK((a) <= (b))
#define HICS_CHECK_GT(a, b) HICS_CHECK((a) > (b))
#define HICS_CHECK_GE(a, b) HICS_CHECK((a) >= (b))

/// Cheap assert in debug builds, no-op in release builds.
#ifndef NDEBUG
#define HICS_DCHECK(condition) HICS_CHECK(condition)
#else
#define HICS_DCHECK(condition) \
  if (true) {                  \
  } else                       \
    ::hics::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)
#endif

#endif  // HICS_COMMON_CHECK_H_
