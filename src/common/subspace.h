#ifndef HICS_COMMON_SUBSPACE_H_
#define HICS_COMMON_SUBSPACE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace hics {

/// An axis-parallel subspace projection: a sorted, duplicate-free set of
/// attribute indices. Value type; cheap to copy for the small
/// dimensionalities (2-10) that subspace search produces.
class Subspace {
 public:
  Subspace() = default;

  /// Builds a subspace from arbitrary-order, possibly duplicated indices.
  explicit Subspace(std::vector<std::size_t> dims);
  Subspace(std::initializer_list<std::size_t> dims)
      : Subspace(std::vector<std::size_t>(dims)) {}

  std::size_t size() const { return dims_.size(); }
  bool empty() const { return dims_.empty(); }
  std::size_t operator[](std::size_t i) const {
    HICS_DCHECK(i < dims_.size());
    return dims_[i];
  }
  const std::vector<std::size_t>& dims() const { return dims_; }
  auto begin() const { return dims_.begin(); }
  auto end() const { return dims_.end(); }

  /// True if `dim` is one of this subspace's attributes (binary search).
  bool Contains(std::size_t dim) const;

  /// True if every attribute of `other` is contained in this subspace.
  bool ContainsAll(const Subspace& other) const;

  /// Returns a copy with `dim` added. CHECK-fails if already present.
  Subspace With(std::size_t dim) const;

  /// Returns a copy with `dim` removed. CHECK-fails if absent.
  Subspace Without(std::size_t dim) const;

  /// Apriori join: if this and `other` are d-dimensional and share their
  /// first d-1 attributes, returns the merged (d+1)-dimensional candidate
  /// and sets *ok = true; otherwise sets *ok = false.
  Subspace AprioriJoin(const Subspace& other, bool* ok) const;

  /// All (d-1)-dimensional subsets, in attribute order of the removed dim.
  std::vector<Subspace> Parents() const;

  /// e.g. "{0, 3, 7}".
  std::string ToString() const;

  friend bool operator==(const Subspace& a, const Subspace& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Subspace& a, const Subspace& b) {
    return !(a == b);
  }
  /// Lexicographic order; gives the canonical Apriori candidate ordering.
  friend bool operator<(const Subspace& a, const Subspace& b) {
    return a.dims_ < b.dims_;
  }

 private:
  std::vector<std::size_t> dims_;
};

/// Hash functor so Subspace can key unordered containers.
struct SubspaceHash {
  std::size_t operator()(const Subspace& s) const;
};

/// A subspace together with its quality (contrast, entropy, ...) as produced
/// by any subspace search method.
struct ScoredSubspace {
  Subspace subspace;
  double score = 0.0;
};

/// Sorts scored subspaces by descending score (ties: lexicographic subspace
/// order, so results are deterministic).
void SortByScoreDescending(std::vector<ScoredSubspace>* subspaces);

/// Keeps only the `k` best-scored subspaces (after sorting descending).
void KeepTopK(std::vector<ScoredSubspace>* subspaces, std::size_t k);

}  // namespace hics

#endif  // HICS_COMMON_SUBSPACE_H_
