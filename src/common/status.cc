#include "common/status.h"

namespace hics {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace hics
