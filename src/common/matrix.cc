#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hics {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  HICS_CHECK_EQ(cols_, other.rows_);
  Matrix result(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        result(i, j) += aik * other(k, j);
      }
    }
  }
  return result;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  HICS_CHECK_EQ(a.rows(), b.rows());
  HICS_CHECK_EQ(a.cols(), b.cols());
  double max_diff = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      max_diff = std::max(max_diff, std::fabs(a(r, c) - b(r, c)));
    }
  }
  return max_diff;
}

void JacobiEigenSymmetric(const Matrix& a, std::vector<double>* eigenvalues,
                          Matrix* eigenvectors, double tolerance,
                          int max_sweeps) {
  HICS_CHECK(eigenvalues != nullptr && eigenvectors != nullptr);
  HICS_CHECK_EQ(a.rows(), a.cols());
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) sum += m(i, j) * m(i, j);
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan of the rotation angle.
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return m(i, i) > m(j, j);
  });

  eigenvalues->resize(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t out = 0; out < n; ++out) {
    const std::size_t in = order[out];
    (*eigenvalues)[out] = m(in, in);
    for (std::size_t k = 0; k < n; ++k) sorted_vectors(k, out) = v(k, in);
  }
  *eigenvectors = std::move(sorted_vectors);
}

}  // namespace hics
