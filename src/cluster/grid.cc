#include "cluster/grid.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "engine/prepared_dataset.h"
#include "simd/simd.h"

namespace hics {

namespace {

/// bins^dims with overflow detection; returns false (and leaves *cells
/// unspecified) when the product does not fit in 64 bits.
bool GridNumCells(std::size_t bins_per_dim, std::size_t dims,
                  std::uint64_t* cells) {
  const std::uint64_t bins = bins_per_dim;
  std::uint64_t product = 1;
  for (std::size_t j = 0; j < dims; ++j) {
    if (bins != 0 &&
        product > std::numeric_limits<std::uint64_t>::max() / bins) {
      return false;
    }
    product *= bins;
  }
  *cells = product;
  return true;
}

/// One splitmix64 step folding `bin` into the running key — the hashed
/// key scheme for grids whose nominal cell count overflows 64 bits.
inline std::uint64_t MixBin(std::uint64_t key, std::uint32_t bin) {
  std::uint64_t z =
      key ^ (static_cast<std::uint64_t>(bin) + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// NaN-ignoring min/max of one column; [0, 0] when empty or all-NaN
/// (every value then lands in bin 0 through the canonical clamp).
std::pair<double, double> ScanRange(const std::vector<double>& col) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (double v : col) {
    if (!(v == v)) continue;
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  if (!(mn <= mx)) return {0.0, 0.0};
  return {mn, mx};
}

/// Rows per parallel binning chunk; also the per-worker bin scratch size.
constexpr std::size_t kBinChunk = 8192;

}  // namespace

bool GridKeysHashed(std::size_t bins_per_dim, std::size_t dims) {
  std::uint64_t cells = 0;
  return !GridNumCells(bins_per_dim, dims, &cells);
}

std::uint64_t GridCellKey(std::span<const std::uint32_t> bins,
                          std::size_t bins_per_dim, bool hashed) {
  std::uint64_t key = 0;
  if (hashed) {
    for (std::uint32_t b : bins) key = MixBin(key, b);
  } else {
    for (std::uint32_t b : bins) {
      key = key * static_cast<std::uint64_t>(bins_per_dim) + b;
    }
  }
  return key;
}

SubspaceGrid::SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
                           std::size_t bins_per_dim)
    : SubspaceGrid(dataset, subspace, [&] {
        GridOptions options;
        options.bins_per_dim = bins_per_dim;
        return options;
      }()) {}

SubspaceGrid::SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
                           const GridOptions& options)
    : bins_per_dim_(options.bins_per_dim) {
  HICS_CHECK_GT(bins_per_dim_, 0u);
  HICS_CHECK(!subspace.empty());
  lo_.resize(subspace.size());
  width_.resize(subspace.size());
  for (std::size_t j = 0; j < subspace.size(); ++j) {
    const auto [mn, mx] = ScanRange(dataset.Column(subspace[j]));
    lo_[j] = mn;
    width_[j] = mx - mn;
    if (width_[j] <= 0.0) width_[j] = 1.0;  // constant attribute -> one bin
  }
  Build(dataset, subspace, options);
}

SubspaceGrid::SubspaceGrid(const PreparedDataset& prepared,
                           const Subspace& subspace,
                           const GridOptions& options)
    : bins_per_dim_(options.bins_per_dim) {
  HICS_CHECK_GT(bins_per_dim_, 0u);
  HICS_CHECK(!subspace.empty());
  lo_.resize(subspace.size());
  width_.resize(subspace.size());
  for (std::size_t j = 0; j < subspace.size(); ++j) {
    const auto [mn, mx] = prepared.AttributeRange(subspace[j]);
    lo_[j] = mn;
    width_[j] = mx - mn;
    if (width_[j] <= 0.0) width_[j] = 1.0;
  }
  Build(prepared.dataset(), subspace, options);
}

SubspaceGrid::SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
                           std::span<const std::pair<double, double>> ranges,
                           const GridOptions& options)
    : bins_per_dim_(options.bins_per_dim) {
  HICS_CHECK_GT(bins_per_dim_, 0u);
  HICS_CHECK(!subspace.empty());
  HICS_CHECK_EQ(ranges.size(), subspace.size());
  lo_.resize(subspace.size());
  width_.resize(subspace.size());
  for (std::size_t j = 0; j < subspace.size(); ++j) {
    lo_[j] = ranges[j].first;
    width_[j] = ranges[j].second - ranges[j].first;
    if (width_[j] <= 0.0) width_[j] = 1.0;
  }
  Build(dataset, subspace, options);
}

SubspaceGrid SubspaceGrid::MergeShards(
    std::span<const SubspaceGrid* const> shards) {
  HICS_CHECK(!shards.empty());
  const SubspaceGrid& first = *shards[0];
  SubspaceGrid merged;
  merged.bins_per_dim_ = first.bins_per_dim_;
  merged.dense_ = first.dense_;
  merged.hashed_ = first.hashed_;
  merged.lo_ = first.lo_;
  merged.width_ = first.width_;
  merged.scale_ = first.scale_;
  const std::size_t dims = first.dimensionality();

  bool keys = true;
  std::size_t total = 0;
  for (const SubspaceGrid* shard : shards) {
    // Identical geometry is the merge precondition: same binning = same
    // cell keys. Shards built against per-shard ranges would silently
    // count different cells — refuse loudly instead.
    HICS_CHECK_EQ(shard->bins_per_dim_, merged.bins_per_dim_);
    HICS_CHECK_EQ(shard->dimensionality(), dims);
    HICS_CHECK(shard->dense_ == merged.dense_);
    HICS_CHECK(shard->hashed_ == merged.hashed_);
    for (std::size_t j = 0; j < dims; ++j) {
      HICS_CHECK(shard->lo_[j] == merged.lo_[j]);
      HICS_CHECK(shard->width_[j] == merged.width_[j]);
    }
    keys = keys && shard->kept_point_keys_;
    total += shard->total_;
  }

  merged.total_ = total;
  if (merged.dense_) {
    HICS_CHECK_LT(total,
                  std::size_t{std::numeric_limits<std::uint32_t>::max()});
    merged.counts_dense_.assign(first.counts_dense_.size(), 0);
    for (const SubspaceGrid* shard : shards) {
      HICS_CHECK_EQ(shard->counts_dense_.size(),
                    merged.counts_dense_.size());
      for (std::size_t key = 0; key < merged.counts_dense_.size(); ++key) {
        merged.counts_dense_[key] += shard->counts_dense_[key];
      }
    }
    merged.nonempty_ = 0;
    for (std::uint32_t count : merged.counts_dense_) {
      if (count != 0) ++merged.nonempty_;
    }
  } else {
    for (const SubspaceGrid* shard : shards) {
      for (const auto& [key, count] : shard->counts_sparse_) {
        merged.counts_sparse_[key] += count;
      }
    }
    merged.nonempty_ = merged.counts_sparse_.size();
  }

  // Shard order is object-id order (the partition is contiguous), so
  // concatenating per-shard keys restores the full dataset's point_keys.
  if (keys) {
    merged.point_keys_.reserve(total);
    for (const SubspaceGrid* shard : shards) {
      merged.point_keys_.insert(merged.point_keys_.end(),
                                shard->point_keys_.begin(),
                                shard->point_keys_.end());
    }
    merged.kept_point_keys_ = true;
  }
  return merged;
}

void SubspaceGrid::Build(const Dataset& dataset, const Subspace& subspace,
                         const GridOptions& options) {
  // The canonical bin kernel truncates into int32 lanes; bins past 2^31
  // would saturate. No realistic grid comes close.
  HICS_CHECK_LE(bins_per_dim_, std::size_t{1} << 31);
  const std::size_t n = dataset.num_objects();
  const std::size_t dims = subspace.size();

  scale_.resize(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    scale_[j] = static_cast<double>(bins_per_dim_) / width_[j];
  }

  std::uint64_t num_cells = 0;
  hashed_ = !GridNumCells(bins_per_dim_, dims, &num_cells);
  dense_ = !hashed_ && num_cells <= options.dense_cell_cap;

  // Pass 1: per-point cell keys, column-major within row chunks — each
  // axis runs the canonical SIMD bin_index kernel over the chunk, then
  // folds the bins into the running mixed-radix (or hashed) key. Chunks
  // write disjoint key ranges, so any thread count produces identical
  // keys.
  point_keys_.assign(n, 0);
  const std::size_t num_chunks = (n + kBinChunk - 1) / kBinChunk;
  const std::size_t workers =
      ParallelWorkerCount(num_chunks, options.num_threads);
  std::vector<std::uint32_t> scratch(workers * kBinChunk);
  const simd::SimdKernels& kernels = simd::ActiveKernels();
  const double max_bin = static_cast<double>(bins_per_dim_ - 1);
  ParallelForWorker(
      0, num_chunks, options.num_threads,
      [&](std::size_t c, std::size_t w) {
        const std::size_t begin = c * kBinChunk;
        const std::size_t end = std::min(n, begin + kBinChunk);
        const std::size_t len = end - begin;
        std::uint32_t* bins_buf = scratch.data() + w * kBinChunk;
        std::uint64_t* keys = point_keys_.data() + begin;
        for (std::size_t j = 0; j < dims; ++j) {
          const double* col = dataset.Column(subspace[j]).data() + begin;
          kernels.bin_index(col, len, lo_[j], scale_[j], max_bin, bins_buf);
          if (hashed_) {
            for (std::size_t i = 0; i < len; ++i) {
              keys[i] = MixBin(keys[i], bins_buf[i]);
            }
          } else {
            const std::uint64_t radix = bins_per_dim_;
            for (std::size_t i = 0; i < len; ++i) {
              keys[i] = keys[i] * radix + bins_buf[i];
            }
          }
        }
      });

  // Pass 2: occupancy counts. Serial on purpose: integer increments over
  // the deterministic keys, ~N random accesses — never the bottleneck,
  // and trivially identical for every configuration.
  total_ = n;
  nonempty_ = 0;
  if (dense_) {
    HICS_CHECK_LT(n, std::size_t{std::numeric_limits<std::uint32_t>::max()});
    counts_dense_.assign(num_cells, 0);
    for (std::uint64_t key : point_keys_) {
      if (counts_dense_[key]++ == 0) ++nonempty_;
    }
  } else {
    counts_sparse_.reserve(std::min<std::size_t>(n, 1u << 16));
    for (std::uint64_t key : point_keys_) ++counts_sparse_[key];
    nonempty_ = counts_sparse_.size();
  }

  if (options.keep_point_keys) {
    kept_point_keys_ = true;
  } else {
    point_keys_.clear();
    point_keys_.shrink_to_fit();
  }
}

std::size_t SubspaceGrid::num_nonempty_cells() const { return nonempty_; }

std::uint32_t SubspaceGrid::BinOf(double v, std::size_t j) const {
  HICS_DCHECK(j < lo_.size());
  return simd::BinIndexOne(v, lo_[j], scale_[j],
                           static_cast<double>(bins_per_dim_ - 1));
}

std::uint64_t SubspaceGrid::KeyOfBins(
    std::span<const std::uint32_t> bins) const {
  HICS_DCHECK(bins.size() == dimensionality());
  return GridCellKey(bins, bins_per_dim_, hashed_);
}

std::size_t SubspaceGrid::CountForKey(std::uint64_t key) const {
  if (dense_) {
    return key < counts_dense_.size() ? counts_dense_[key] : 0;
  }
  const auto it = counts_sparse_.find(key);
  return it == counts_sparse_.end() ? 0 : it->second;
}

std::size_t SubspaceGrid::SmoothedCount(
    std::span<const std::uint32_t> bins) const {
  const std::size_t dims = dimensionality();
  HICS_DCHECK(bins.size() == dims);
  // Hashed keys cannot be shifted axis-wise; rehash with one bin replaced.
  const auto key_with = [&](std::size_t axis, std::uint32_t bin) {
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < dims; ++j) {
      const std::uint32_t b = j == axis ? bin : bins[j];
      key = hashed_ ? MixBin(key, b)
                    : key * static_cast<std::uint64_t>(bins_per_dim_) + b;
    }
    return key;
  };
  const std::uint64_t center = KeyOfBins(bins);
  std::size_t sum = CountForKey(center);
  // Mixed-radix neighbor keys are the center key +/- the axis stride, so
  // the common (non-hashed) path skips the rehash entirely.
  std::uint64_t stride = 1;
  for (std::size_t r = 0; r < dims; ++r) {
    const std::size_t j = dims - 1 - r;  // axis j has stride bins^(dims-1-j)
    if (bins[j] > 0) {
      sum += CountForKey(hashed_ ? key_with(j, bins[j] - 1) : center - stride);
    }
    if (bins[j] + 1 < bins_per_dim_) {
      sum += CountForKey(hashed_ ? key_with(j, bins[j] + 1) : center + stride);
    }
    stride *= static_cast<std::uint64_t>(bins_per_dim_);
  }
  return sum;
}

std::span<const std::uint64_t> SubspaceGrid::point_keys() const {
  HICS_CHECK(kept_point_keys_);
  return point_keys_;
}

void SubspaceGrid::AdmitRow(std::span<const double> values) {
  HICS_CHECK(!kept_point_keys_)
      << "a grid with retained point keys cannot be slid: the id mapping "
         "is stale after any window mutation";
  const std::size_t dims = dimensionality();
  HICS_CHECK_EQ(values.size(), dims);
  std::uint64_t key = 0;
  for (std::size_t j = 0; j < dims; ++j) {
    const std::uint32_t b = BinOf(values[j], j);
    key = hashed_ ? MixBin(key, b)
                  : key * static_cast<std::uint64_t>(bins_per_dim_) + b;
  }
  if (dense_) {
    HICS_CHECK_LT(
        total_, std::size_t{std::numeric_limits<std::uint32_t>::max()});
    if (counts_dense_[key]++ == 0) ++nonempty_;
  } else {
    if (++counts_sparse_[key] == 1) ++nonempty_;
  }
  ++total_;
}

void SubspaceGrid::RetireRow(std::span<const double> values) {
  HICS_CHECK(!kept_point_keys_)
      << "a grid with retained point keys cannot be slid: the id mapping "
         "is stale after any window mutation";
  const std::size_t dims = dimensionality();
  HICS_CHECK_EQ(values.size(), dims);
  std::uint64_t key = 0;
  for (std::size_t j = 0; j < dims; ++j) {
    const std::uint32_t b = BinOf(values[j], j);
    key = hashed_ ? MixBin(key, b)
                  : key * static_cast<std::uint64_t>(bins_per_dim_) + b;
  }
  if (dense_) {
    HICS_CHECK_GT(counts_dense_[key], 0u)
        << "retiring a row from an empty cell: the retired values were "
           "never admitted under this geometry";
    if (--counts_dense_[key] == 0) --nonempty_;
  } else {
    auto it = counts_sparse_.find(key);
    HICS_CHECK(it != counts_sparse_.end() && it->second > 0)
        << "retiring a row from an empty cell: the retired values were "
           "never admitted under this geometry";
    if (--it->second == 0) {
      counts_sparse_.erase(it);
      --nonempty_;
    }
  }
  HICS_CHECK_GT(total_, 0u);
  --total_;
}

void SubspaceGrid::AddCounts(const SubspaceGrid& other) {
  HICS_CHECK(!kept_point_keys_);
  HICS_CHECK_EQ(other.bins_per_dim_, bins_per_dim_);
  HICS_CHECK_EQ(other.dimensionality(), dimensionality());
  HICS_CHECK(other.dense_ == dense_);
  HICS_CHECK(other.hashed_ == hashed_);
  for (std::size_t j = 0; j < dimensionality(); ++j) {
    HICS_CHECK(other.lo_[j] == lo_[j]);
    HICS_CHECK(other.width_[j] == width_[j]);
  }
  if (dense_) {
    HICS_CHECK_LT(total_ + other.total_,
                  std::size_t{std::numeric_limits<std::uint32_t>::max()});
    for (std::size_t key = 0; key < counts_dense_.size(); ++key) {
      const std::uint32_t add = other.counts_dense_[key];
      if (add == 0) continue;
      if (counts_dense_[key] == 0) ++nonempty_;
      counts_dense_[key] += add;
    }
  } else {
    for (const auto& [key, count] : other.counts_sparse_) {
      auto [it, inserted] = counts_sparse_.try_emplace(key, 0);
      if (inserted) ++nonempty_;
      it->second += count;
    }
  }
  total_ += other.total_;
}

void SubspaceGrid::SubtractCounts(const SubspaceGrid& other) {
  HICS_CHECK(!kept_point_keys_);
  HICS_CHECK_EQ(other.bins_per_dim_, bins_per_dim_);
  HICS_CHECK_EQ(other.dimensionality(), dimensionality());
  HICS_CHECK(other.dense_ == dense_);
  HICS_CHECK(other.hashed_ == hashed_);
  for (std::size_t j = 0; j < dimensionality(); ++j) {
    HICS_CHECK(other.lo_[j] == lo_[j]);
    HICS_CHECK(other.width_[j] == width_[j]);
  }
  HICS_CHECK_LE(other.total_, total_);
  if (dense_) {
    for (std::size_t key = 0; key < counts_dense_.size(); ++key) {
      const std::uint32_t sub = other.counts_dense_[key];
      if (sub == 0) continue;
      HICS_CHECK_LE(sub, counts_dense_[key])
          << "subtracting more rows from a cell than it holds";
      counts_dense_[key] -= sub;
      if (counts_dense_[key] == 0) --nonempty_;
    }
  } else {
    for (const auto& [key, count] : other.counts_sparse_) {
      auto it = counts_sparse_.find(key);
      HICS_CHECK(it != counts_sparse_.end() && count <= it->second)
          << "subtracting more rows from a cell than it holds";
      it->second -= count;
      if (it->second == 0) {
        counts_sparse_.erase(it);
        --nonempty_;
      }
    }
  }
  total_ -= other.total_;
}

std::size_t SubspaceGrid::ApproxMemoryBytes() const {
  // Size model, not allocator-exact: the dense count slab, or the sparse
  // map's occupied cells at key + count + node overhead, plus retained
  // point keys.
  std::size_t bytes = dense_ ? counts_dense_.size() * sizeof(std::uint32_t)
                             : nonempty_ * (sizeof(std::uint64_t) +
                                            sizeof(std::size_t) +
                                            2 * sizeof(void*));
  if (kept_point_keys_) bytes += point_keys_.size() * sizeof(std::uint64_t);
  return bytes;
}

std::vector<std::pair<std::uint64_t, std::size_t>>
SubspaceGrid::NonEmptyCells() const {
  std::vector<std::pair<std::uint64_t, std::size_t>> cells;
  cells.reserve(nonempty_);
  if (dense_) {
    for (std::uint64_t key = 0; key < counts_dense_.size(); ++key) {
      if (counts_dense_[key] != 0) cells.emplace_back(key, counts_dense_[key]);
    }
  } else {
    for (const auto& [key, count] : counts_sparse_) {
      cells.emplace_back(key, count);
    }
    std::sort(cells.begin(), cells.end());
  }
  return cells;
}

std::vector<std::size_t> SubspaceGrid::NonEmptyCellCounts() const {
  std::vector<std::size_t> counts;
  counts.reserve(nonempty_);
  for (const auto& [key, count] : NonEmptyCells()) counts.push_back(count);
  return counts;
}

double SubspaceGrid::Entropy() const {
  if (total_ == 0) return 0.0;
  // Ascending-key iteration keeps the floating-point sum identical across
  // the dense and sparse layouts.
  double entropy = 0.0;
  for (const auto& [key, count] : NonEmptyCells()) {
    const double p = static_cast<double>(count) / static_cast<double>(total_);
    entropy -= p * std::log(p);
  }
  return entropy;
}

double SubspaceGrid::Coverage(std::size_t density_threshold) const {
  if (total_ == 0) return 0.0;
  std::size_t covered = 0;
  if (dense_) {
    for (std::uint32_t count : counts_dense_) {
      if (count != 0 && count >= density_threshold) covered += count;
    }
  } else {
    for (const auto& [key, count] : counts_sparse_) {
      if (count >= density_threshold) covered += count;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(total_);
}

std::string GridArtifactKey(
    std::size_t bins_per_dim, bool keep_point_keys,
    std::span<const std::pair<double, double>> ranges) {
  // Range bounds enter as exact bit patterns (hex of the IEEE-754
  // doubles): the key must distinguish ranges that differ in the last
  // ulp, because binning does.
  std::string key = "grid:bins=" + std::to_string(bins_per_dim) +
                    ":pk=" + (keep_point_keys ? "1" : "0") + ":r=";
  char buf[2 * 16 + 2];
  for (const auto& [mn, mx] : ranges) {
    std::uint64_t lo_bits;
    std::uint64_t hi_bits;
    static_assert(sizeof(lo_bits) == sizeof(mn));
    std::memcpy(&lo_bits, &mn, sizeof(lo_bits));
    std::memcpy(&hi_bits, &mx, sizeof(hi_bits));
    std::snprintf(buf, sizeof(buf), "%016llx,%016llx;",
                  static_cast<unsigned long long>(lo_bits),
                  static_cast<unsigned long long>(hi_bits));
    key += buf;
  }
  return key;
}

double GridInterest(const Dataset& dataset, const Subspace& subspace,
                    std::size_t bins_per_dim) {
  double marginal_sum = 0.0;
  for (std::size_t dim : subspace) {
    marginal_sum += SubspaceGrid(dataset, Subspace{dim}, bins_per_dim)
                        .Entropy();
  }
  const double joint = SubspaceGrid(dataset, subspace, bins_per_dim)
                           .Entropy();
  return marginal_sum - joint;
}

}  // namespace hics
