#include "cluster/grid.h"

#include <algorithm>
#include <cmath>

#include "stats/histogram.h"

namespace hics {

SubspaceGrid::SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
                           std::size_t bins_per_dim)
    : bins_per_dim_(bins_per_dim) {
  HICS_CHECK_GT(bins_per_dim, 0u);
  HICS_CHECK(!subspace.empty());
  const std::size_t n = dataset.num_objects();

  // Per-attribute ranges.
  std::vector<double> lo(subspace.size()), width(subspace.size());
  for (std::size_t j = 0; j < subspace.size(); ++j) {
    const auto& col = dataset.Column(subspace[j]);
    if (col.empty()) {
      lo[j] = 0.0;
      width[j] = 1.0;
      continue;
    }
    auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    lo[j] = *mn;
    width[j] = *mx - *mn;
    if (width[j] <= 0.0) width[j] = 1.0;  // constant attribute -> one bin
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < subspace.size(); ++j) {
      const double v = dataset.Get(i, subspace[j]);
      std::size_t bin = static_cast<std::size_t>(
          (v - lo[j]) / width[j] * static_cast<double>(bins_per_dim_));
      if (bin >= bins_per_dim_) bin = bins_per_dim_ - 1;
      key = key * (bins_per_dim_ + 1) + bin + 1;
    }
    ++cell_counts_[key];
    ++total_;
  }
}

std::vector<std::size_t> SubspaceGrid::NonEmptyCellCounts() const {
  std::vector<std::size_t> counts;
  counts.reserve(cell_counts_.size());
  for (const auto& [key, count] : cell_counts_) counts.push_back(count);
  return counts;
}

double SubspaceGrid::Entropy() const {
  if (total_ == 0) return 0.0;
  double entropy = 0.0;
  for (const auto& [key, count] : cell_counts_) {
    const double p = static_cast<double>(count) / static_cast<double>(total_);
    entropy -= p * std::log(p);
  }
  return entropy;
}

double SubspaceGrid::Coverage(std::size_t density_threshold) const {
  if (total_ == 0) return 0.0;
  std::size_t covered = 0;
  for (const auto& [key, count] : cell_counts_) {
    if (count >= density_threshold) covered += count;
  }
  return static_cast<double>(covered) / static_cast<double>(total_);
}

double GridInterest(const Dataset& dataset, const Subspace& subspace,
                    std::size_t bins_per_dim) {
  double marginal_sum = 0.0;
  for (std::size_t dim : subspace) {
    marginal_sum += SubspaceGrid(dataset, Subspace{dim}, bins_per_dim)
                        .Entropy();
  }
  const double joint = SubspaceGrid(dataset, subspace, bins_per_dim)
                           .Entropy();
  return marginal_sum - joint;
}

}  // namespace hics
