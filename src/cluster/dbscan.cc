#include "cluster/dbscan.h"

#include <algorithm>
#include <deque>

#include "index/neighbor_searcher.h"

namespace hics {

std::size_t DbscanResult::CountCoreObjects() const {
  return static_cast<std::size_t>(
      std::count(is_core.begin(), is_core.end(), true));
}

std::size_t DbscanResult::CountNoise() const {
  return static_cast<std::size_t>(
      std::count(cluster_of.begin(), cluster_of.end(), kNoise));
}

DbscanResult Dbscan(const Dataset& dataset, const Subspace& subspace,
                    const DbscanParams& params) {
  const std::size_t n = dataset.num_objects();
  DbscanResult result;
  result.cluster_of.assign(n, DbscanResult::kNoise);
  result.is_core.assign(n, false);
  if (n == 0) return result;

  const auto searcher = MakeBruteForceSearcher(dataset, subspace);

  // Neighborhoods include the query object itself per the DBSCAN
  // definition; QueryRadius excludes it, hence the +1 below.
  auto neighborhood = [&](std::size_t id) {
    return searcher->QueryRadius(id, params.eps);
  };

  std::vector<bool> visited(n, false);
  int next_cluster = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    std::vector<Neighbor> seed_neighbors = neighborhood(seed);
    if (seed_neighbors.size() + 1 < params.min_pts) continue;  // noise (so far)
    result.is_core[seed] = true;
    const int cluster = next_cluster++;
    result.cluster_of[seed] = cluster;

    std::deque<std::size_t> frontier;
    for (const Neighbor& nb : seed_neighbors) frontier.push_back(nb.id);
    while (!frontier.empty()) {
      const std::size_t current = frontier.front();
      frontier.pop_front();
      if (result.cluster_of[current] == DbscanResult::kNoise) {
        result.cluster_of[current] = cluster;  // border or core, claim it
      }
      if (visited[current]) continue;
      visited[current] = true;
      std::vector<Neighbor> current_neighbors = neighborhood(current);
      if (current_neighbors.size() + 1 >= params.min_pts) {
        result.is_core[current] = true;
        for (const Neighbor& nb : current_neighbors) {
          if (!visited[nb.id] ||
              result.cluster_of[nb.id] == DbscanResult::kNoise) {
            frontier.push_back(nb.id);
          }
        }
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

std::size_t CountCoreObjects(const Dataset& dataset, const Subspace& subspace,
                             const DbscanParams& params) {
  const std::size_t n = dataset.num_objects();
  if (n == 0) return 0;
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (searcher->CountRadius(i, params.eps) + 1 >= params.min_pts) {
      ++count;
    }
  }
  return count;
}

}  // namespace hics
