#ifndef HICS_CLUSTER_DBSCAN_H_
#define HICS_CLUSTER_DBSCAN_H_

#include <cstddef>
#include <vector>

#include "common/dataset.h"
#include "common/subspace.h"

namespace hics {

/// DBSCAN parameters (Ester et al. 1996).
struct DbscanParams {
  double eps = 0.1;
  /// Minimum neighborhood size (query object included) for a core object.
  std::size_t min_pts = 5;
};

/// DBSCAN clustering result.
struct DbscanResult {
  /// Cluster id per object; kNoise (== -1) marks noise.
  std::vector<int> cluster_of;
  /// Per-object core flag: |N_eps(o)| >= min_pts.
  std::vector<bool> is_core;
  int num_clusters = 0;

  static constexpr int kNoise = -1;

  std::size_t CountCoreObjects() const;
  std::size_t CountNoise() const;
};

/// Runs DBSCAN on `dataset` with distances restricted to `subspace`.
/// The substrate RIS (Kailing et al. 2003) builds on: RIS's subspace
/// quality is derived from the density of core objects under the DBSCAN
/// paradigm.
DbscanResult Dbscan(const Dataset& dataset, const Subspace& subspace,
                    const DbscanParams& params);

/// Counts only the core objects (cheaper than full clustering: no
/// expansion bookkeeping). Exactly what RIS needs.
std::size_t CountCoreObjects(const Dataset& dataset, const Subspace& subspace,
                             const DbscanParams& params);

}  // namespace hics

#endif  // HICS_CLUSTER_DBSCAN_H_
