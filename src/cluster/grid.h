#ifndef HICS_CLUSTER_GRID_H_
#define HICS_CLUSTER_GRID_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/subspace.h"

namespace hics {

class PreparedDataset;  // engine/prepared_dataset.h (range memoization)

/// Build options for SubspaceGrid. Every field except `bins_per_dim` is a
/// pure performance / layout knob: the observable grid (cell keys, counts,
/// entropy, coverage) is identical for any setting.
struct GridOptions {
  /// Dense cells arrays above this many nominal cells would dominate the
  /// build; 2^22 cells is a 16 MiB count array — past the point where the
  /// hash map of *occupied* cells (bounded by N) is the better layout.
  static constexpr std::size_t kDefaultDenseCellCap = std::size_t{1} << 22;

  std::size_t bins_per_dim = 16;

  /// Parallelism of the binning pass (1 = serial, 0 = hardware
  /// concurrency). Cell counts are exact integer sums, so the grid is
  /// bit-identical for every value.
  std::size_t num_threads = 1;

  /// Retain the per-point cell keys (point_keys()). The density scorer
  /// needs them for its O(N) per-point occupancy gather; entropy-only
  /// consumers (Enclus) skip the 8N-byte retention.
  bool keep_point_keys = false;

  /// Cells live in a flat count array when bins^|S| <= dense_cell_cap and
  /// in a hash map of occupied cells above it. Exposed so tests can force
  /// the sparse path on small grids; results are identical either way.
  std::size_t dense_cell_cap = kDefaultDenseCellCap;
};

/// True when bins^dims overflows 64 bits, in which case cell keys are
/// splitmix-hashed per axis instead of mixed-radix (collisions are
/// possible but need ~2^32 occupied cells to become likely — far beyond
/// any N this library handles in memory).
bool GridKeysHashed(std::size_t bins_per_dim, std::size_t dims);

/// Cell key of a per-axis bin vector: mixed-radix over `bins_per_dim`
/// (axis 0 most significant), or the splitmix chain when `hashed`. Shared
/// by SubspaceGrid and out-of-sample grid scoring so a serialized model's
/// keys match a freshly built grid's bit for bit.
std::uint64_t GridCellKey(std::span<const std::uint32_t> bins,
                          std::size_t bins_per_dim, bool hashed);

/// Equi-width multidimensional grid over a subspace projection: the CLIQUE
/// partitioning that Enclus's entropy measure is defined on, and the O(N)
/// histogram substrate the grid-density outlier scorer builds on. Each
/// attribute range is split into `bins_per_dim` equal intervals; a cell is
/// the Cartesian product of one interval per subspace attribute.
///
/// Binning runs through the canonical SIMD bin_index kernel (simd/simd.h),
/// so per-axis bins — and therefore every cell count — are bit-identical
/// across SIMD tiers, thread counts, and the dense/sparse layouts.
class SubspaceGrid {
 public:
  /// Builds the grid with default options. Attribute ranges come from the
  /// data (min/max per attribute over the full dataset), matching CLIQUE.
  SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
               std::size_t bins_per_dim);

  SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
               const GridOptions& options);

  /// Prepared-path overload: attribute ranges come from the prepared
  /// artifact's memoized AttributeRange (the sorted-column ends when the
  /// rank artifacts already exist) instead of a fresh min/max scan over
  /// every column. The resulting grid is identical to the Dataset
  /// overload's.
  SubspaceGrid(const PreparedDataset& prepared, const Subspace& subspace,
               const GridOptions& options);

  /// Explicit-range overload: bins `dataset` against caller-supplied
  /// (min, max) ranges (one per subspace axis, in subspace order) instead
  /// of scanning the data. The sharded scoring path builds every shard's
  /// grid against the GLOBAL attribute ranges this way, which makes
  /// per-point cell keys — and therefore cell counts — mergeable across
  /// shards exactly. A (0, 0) range collapses to width 1.0 like a
  /// constant attribute.
  SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
               std::span<const std::pair<double, double>> ranges,
               const GridOptions& options);

  /// Merges per-shard grids (in shard order) into the grid the full
  /// dataset would have produced. Cell counts are additive, so the merge
  /// is exact: if every shard was built with the explicit-range overload
  /// against identical ranges (and identical GridOptions), the merged
  /// grid's cells, counts, entropy, coverage, and — when the shards kept
  /// point keys — its concatenated point_keys() are bit-identical to one
  /// grid built over the row-concatenation of the shards. CHECK-enforced:
  /// at least one shard; all shards agree on bins_per_dim, dimensionality,
  /// lo/width per axis, and layout; merged total stays under the dense
  /// layout's uint32 count limit.
  static SubspaceGrid MergeShards(
      std::span<const SubspaceGrid* const> shards);

  std::size_t bins_per_dim() const { return bins_per_dim_; }
  std::size_t num_nonempty_cells() const;
  std::size_t total_objects() const { return total_; }
  std::size_t dimensionality() const { return lo_.size(); }

  /// True when counts live in the flat dense array (bins^|S| under the
  /// dense cap); false for the hash-map layout.
  bool dense() const { return dense_; }
  /// True when cell keys are hashed (bins^|S| overflows 64 bits).
  bool hashed_keys() const { return hashed_; }

  /// Occupancy counts of all non-empty cells, ordered by ascending cell
  /// key — deterministic across layouts, thread counts, SIMD tiers, and
  /// rebuilds, so downstream consumers need no per-call sorting.
  std::vector<std::size_t> NonEmptyCellCounts() const;

  /// Non-empty cells as (key, count) pairs, ascending by key. The
  /// serialization order of the grid scorer's trained state.
  std::vector<std::pair<std::uint64_t, std::size_t>> NonEmptyCells() const;

  /// Shannon entropy (natural log) of the cell occupancy distribution,
  /// Enclus's H(S). Low entropy = mass concentrated in few cells = good
  /// clustering structure.
  double Entropy() const;

  /// Enclus "coverage": fraction of objects that lie in dense cells, where
  /// dense means count >= `density_threshold`.
  double Coverage(std::size_t density_threshold) const;

  // --- density-scorer substrate ---

  /// Lower edge / width of subspace axis `j`'s attribute range (width 1.0
  /// for constant attributes, which collapse to a single bin).
  double lo(std::size_t j) const { return lo_[j]; }
  double width(std::size_t j) const { return width_[j]; }

  /// Bin of value `v` along axis `j` — the canonical scalar bin mapping
  /// (simd::BinIndexOne): NaN and below-range values land in bin 0,
  /// above-range values in the last bin.
  std::uint32_t BinOf(double v, std::size_t j) const;

  /// Cell key of a per-axis bin vector (size dimensionality()).
  std::uint64_t KeyOfBins(std::span<const std::uint32_t> bins) const;

  /// Occupancy of the cell with key `key`; 0 for empty or unknown cells.
  /// O(1): a dense-array load or one hash probe.
  std::size_t CountForKey(std::uint64_t key) const;

  /// Occupancy of the cell at `bins` plus its 2|S| face-adjacent
  /// neighbors (von Neumann smoothing; neighbors outside the grid edge
  /// contribute nothing).
  std::size_t SmoothedCount(std::span<const std::uint32_t> bins) const;

  /// Per-point cell keys in object-id order. Requires
  /// GridOptions::keep_point_keys (CHECK-enforced).
  std::span<const std::uint64_t> point_keys() const;

  /// True when per-point cell keys were retained. Streaming/cached grids
  /// are built without them (object ids shift on every window slide, so
  /// retained keys could never be carried); consumers fall back to
  /// re-binning per point, which lands on identical cell keys.
  bool has_point_keys() const { return kept_point_keys_; }

  // --- incremental maintenance (streaming data plane, DESIGN.md §5j) ---
  //
  // Cell counts are exact integer sums, so retiring the evicted rows and
  // admitting the new ones yields *the* grid a cold rebuild over the slid
  // window would produce — bit-identical, provided the binning geometry
  // (lo/width per axis, bins_per_dim) still matches the new window's
  // ranges; the caller checks that (GridArtifactKey encodes the range
  // bits, so a range shift changes the cache key instead of corrupting a
  // carried grid). CHECK-enforced: a grid that retained point keys cannot
  // be mutated (the id mapping is stale after any slide).

  /// Increments the cell containing one row. `values` are the row's
  /// subspace-projected coordinates (size dimensionality(), subspace
  /// order — the same values Build binned).
  void AdmitRow(std::span<const double> values);

  /// Decrements the cell containing one row; the row must have been
  /// counted (CHECK: its cell is non-empty).
  void RetireRow(std::span<const double> values);

  /// Adds / subtracts another grid's cell counts in place — the
  /// incremental form of MergeShards for whole-block retire/admit: when a
  /// window slide replaces one shard block, merged' = merged - old_block
  /// + new_block reproduces a from-scratch re-merge exactly (integer
  /// addition is associative and commutative). Geometry must match
  /// (CHECK, same preconditions as MergeShards); subtracting a count
  /// below zero CHECK-fails.
  void AddCounts(const SubspaceGrid& other);
  void SubtractCounts(const SubspaceGrid& other);

  /// Estimated footprint in bytes of the count storage (+ retained point
  /// keys) — the size model the ArtifactCache charges grid artifacts
  /// with.
  std::size_t ApproxMemoryBytes() const;

 private:
  SubspaceGrid() = default;  // MergeShards assembles the state directly

  void Build(const Dataset& dataset, const Subspace& subspace,
             const GridOptions& options);

  std::size_t bins_per_dim_ = 0;
  std::size_t total_ = 0;
  std::size_t nonempty_ = 0;
  bool dense_ = false;
  bool hashed_ = false;
  bool kept_point_keys_ = false;

  std::vector<double> lo_;
  std::vector<double> width_;
  std::vector<double> scale_;  // bins / width, precomputed per axis

  /// Dense layout: counts_dense_[key], size = bins^|S| (<= dense cap).
  std::vector<std::uint32_t> counts_dense_;
  /// Sparse layout: occupied cells only.
  std::unordered_map<std::uint64_t, std::size_t> counts_sparse_;

  std::vector<std::uint64_t> point_keys_;
};

/// Cache key of a grid artifact (ArtifactCache::FindGridErased): encodes
/// every grid-shaping parameter — bins per dim, point-key retention, and
/// the exact bit patterns of the (min, max) ranges the grid bins against.
/// Two windows whose ranges differ in even one bit get different keys, so
/// a cached grid can never be served against shifted bounds; ranges that
/// survive a slide bit-for-bit keep the key stable, which is what lets
/// the streaming plane carry a grid forward incrementally.
std::string GridArtifactKey(std::size_t bins_per_dim, bool keep_point_keys,
                            std::span<const std::pair<double, double>> ranges);

/// Enclus interest measure (Cheng et al. 1999):
///   interest(S) = sum_{s in S} H({s}) - H(S),
/// the total correlation (multi-information) of the subspace under the grid
/// approximation. Zero for independent attributes, positive for correlated
/// ones.
double GridInterest(const Dataset& dataset, const Subspace& subspace,
                    std::size_t bins_per_dim);

}  // namespace hics

#endif  // HICS_CLUSTER_GRID_H_
