#ifndef HICS_CLUSTER_GRID_H_
#define HICS_CLUSTER_GRID_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/subspace.h"

namespace hics {

/// Equi-width multidimensional grid over a subspace projection: the CLIQUE
/// partitioning that Enclus's entropy measure is defined on. Each attribute
/// range is split into `bins_per_dim` equal intervals; a cell is the
/// Cartesian product of one interval per subspace attribute. Only non-empty
/// cells are materialized (sparse map), so high-dimensional subspaces stay
/// cheap even though the nominal cell count is bins^|S|.
class SubspaceGrid {
 public:
  /// Builds the grid. Attribute ranges come from the data (min/max per
  /// attribute over the full dataset), matching CLIQUE.
  SubspaceGrid(const Dataset& dataset, const Subspace& subspace,
               std::size_t bins_per_dim);

  std::size_t bins_per_dim() const { return bins_per_dim_; }
  std::size_t num_nonempty_cells() const { return cell_counts_.size(); }
  std::size_t total_objects() const { return total_; }

  /// Occupancy counts of all non-empty cells (order unspecified).
  std::vector<std::size_t> NonEmptyCellCounts() const;

  /// Shannon entropy (natural log) of the cell occupancy distribution,
  /// Enclus's H(S). Low entropy = mass concentrated in few cells = good
  /// clustering structure.
  double Entropy() const;

  /// Enclus "coverage": fraction of objects that lie in dense cells, where
  /// dense means count >= `density_threshold`.
  double Coverage(std::size_t density_threshold) const;

 private:
  std::size_t bins_per_dim_;
  std::size_t total_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> cell_counts_;
};

/// Enclus interest measure (Cheng et al. 1999):
///   interest(S) = sum_{s in S} H({s}) - H(S),
/// the total correlation (multi-information) of the subspace under the grid
/// approximation. Zero for independent attributes, positive for correlated
/// ones.
double GridInterest(const Dataset& dataset, const Subspace& subspace,
                    std::size_t bins_per_dim);

}  // namespace hics

#endif  // HICS_CLUSTER_GRID_H_
