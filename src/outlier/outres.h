#ifndef HICS_OUTLIER_OUTRES_H_
#define HICS_OUTLIER_OUTRES_H_

#include <string>
#include <vector>

#include "outlier/outlier_scorer.h"

namespace hics {

/// OUTRES-style adaptive density scorer (after Müller, Schiffer, Seidl:
/// "Adaptive outlierness for subspace outlier ranking", CIKM 2010 — the
/// paper's second named future-work instantiation of the ranking step).
///
/// Core ideas kept from OUTRES, simplified to a per-subspace scorer that
/// fits this library's decoupled pipeline:
///  * density is an Epanechnikov kernel estimate whose bandwidth *adapts
///    to the subspace dimensionality* (h grows with d so the expected
///    neighborhood count stays comparable — the same concern HiCS's
///    adaptive slices address on the search side),
///  * outlierness is the object's *deviation* relative to its
///    neighborhood's density distribution: (mean - den(o)) / (k * stddev),
///    counted only when the object is a significant low-density deviator.
/// Higher score = more outlying (we report the deviation factor directly;
/// original OUTRES multiplies 1/deviation into a decreasing score).
struct OutresParams {
  /// Base bandwidth at dimensionality 1, as a fraction of the data range
  /// (data is assumed min-max normalized, like all scorers here).
  double base_bandwidth = 0.1;
  /// Deviation significance threshold: an object counts as deviating when
  /// den(o) < mean - deviation_factor * stddev of its neighborhood's
  /// densities (OUTRES uses 1).
  double deviation_factor = 1.0;
};

class OutresScorer : public OutlierScorer {
 public:
  explicit OutresScorer(OutresParams params = {}) : params_(params) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  std::string name() const override { return "outres"; }

  /// Both real-valued parameters affect scores; std::to_string's fixed
  /// six-decimal rendering is enough to tell configured values apart.
  std::string cache_key() const override {
    return "outres:h=" + std::to_string(params_.base_bandwidth) +
           ":dev=" + std::to_string(params_.deviation_factor);
  }

  /// Dimensionality-adaptive bandwidth: h(d) = base * d^(1/2) scaled by
  /// the optimal-rate factor OUTRES derives from Silverman's rule
  /// (exposed for testing).
  double Bandwidth(std::size_t dims, std::size_t num_objects) const;

 private:
  OutresParams params_;
};

}  // namespace hics

#endif  // HICS_OUTLIER_OUTRES_H_
