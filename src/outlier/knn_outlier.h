#ifndef HICS_OUTLIER_KNN_OUTLIER_H_
#define HICS_OUTLIER_KNN_OUTLIER_H_

#include <string>
#include <vector>

#include "outlier/outlier_scorer.h"

namespace hics {

/// k-distance outlier score (Ramaswamy-style): score(x) = distance to the
/// k-th nearest neighbor in the subspace. Simple, global density proxy;
/// provided as an alternative instantiation of the ranking step.
///
/// `num_threads` parallelizes the per-object kNN queries like
/// LofParams::num_threads (1 = serial, 0 = hardware concurrency); scores
/// are identical for any value.
class KnnDistanceScorer : public OutlierScorer {
 public:
  explicit KnnDistanceScorer(std::size_t k = 10, std::size_t num_threads = 1)
      : k_(k), num_threads_(num_threads) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  /// Prepared path: the n*k neighborhood table comes from the artifact
  /// cache (shared with LOF when both use the same k in one subspace).
  std::vector<double> ScoreSubspacePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const override;

  std::string name() const override { return "knn-dist"; }

  /// k is the only score-affecting parameter.
  std::string cache_key() const override {
    return "knn-dist:k=" + std::to_string(k_);
  }

  /// Out-of-sample support (src/serve): the score is the distance to the
  /// k-th nearest *training* object, so no trained state is needed beyond
  /// the searcher.
  bool SupportsOutOfSample() const override { return true; }
  std::size_t NeighborhoodSize() const override { return k_; }
  double ScoreOutOfSample(std::span<const Neighbor> neighbors,
                          const TrainedScorerState& state) const override;

 private:
  std::size_t k_;
  std::size_t num_threads_;
};

/// Average-kNN-distance score (Angiulli-Pizzuti style): score(x) = mean
/// distance to the k nearest neighbors. Slightly more robust than the pure
/// k-distance. `num_threads` as in KnnDistanceScorer.
class KnnAverageScorer : public OutlierScorer {
 public:
  explicit KnnAverageScorer(std::size_t k = 10, std::size_t num_threads = 1)
      : k_(k), num_threads_(num_threads) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  /// Prepared path: neighborhood table from the artifact cache.
  std::vector<double> ScoreSubspacePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const override;

  std::string name() const override { return "knn-avg"; }

  /// k is the only score-affecting parameter.
  std::string cache_key() const override {
    return "knn-avg:k=" + std::to_string(k_);
  }

  /// Out-of-sample support (src/serve): mean distance to the k nearest
  /// training objects; stateless like knn-dist.
  bool SupportsOutOfSample() const override { return true; }
  std::size_t NeighborhoodSize() const override { return k_; }
  double ScoreOutOfSample(std::span<const Neighbor> neighbors,
                          const TrainedScorerState& state) const override;

 private:
  std::size_t k_;
  std::size_t num_threads_;
};

}  // namespace hics

#endif  // HICS_OUTLIER_KNN_OUTLIER_H_
