#ifndef HICS_OUTLIER_SUBSPACE_RANKER_H_
#define HICS_OUTLIER_SUBSPACE_RANKER_H_

#include <vector>

#include "common/dataset.h"
#include "common/subspace.h"
#include "outlier/outlier_scorer.h"

namespace hics {

/// How per-subspace scores are combined into the final score.
enum class ScoreAggregation {
  /// Definition 1 in the paper: score(x) = (1/|RS|) sum_S score_S(x).
  /// Cumulative: deviating in several subspaces raises the total. The
  /// paper's default.
  kAverage,
  /// max_S score_S(x). Sensitive to fluctuations; the paper reports it
  /// degrades with many subspaces (checked by bench_ablation_aggregation).
  kMax,
};

/// Aggregates per-subspace score vectors (all of equal length) into one
/// final score per object.
std::vector<double> AggregateScores(
    const std::vector<std::vector<double>>& per_subspace_scores,
    ScoreAggregation aggregation);

/// The outlier-ranking half of the decoupled pipeline: runs `scorer` on
/// every subspace in `subspaces` and aggregates. With an empty subspace
/// list, scores the full space (traditional outlier ranking).
std::vector<double> RankWithSubspaces(const Dataset& dataset,
                                      const std::vector<Subspace>& subspaces,
                                      const OutlierScorer& scorer,
                                      ScoreAggregation aggregation =
                                          ScoreAggregation::kAverage);

/// Convenience overload for scored subspaces (scores ignored; only the
/// projections matter for ranking).
std::vector<double> RankWithSubspaces(
    const Dataset& dataset, const std::vector<ScoredSubspace>& subspaces,
    const OutlierScorer& scorer,
    ScoreAggregation aggregation = ScoreAggregation::kAverage);

}  // namespace hics

#endif  // HICS_OUTLIER_SUBSPACE_RANKER_H_
