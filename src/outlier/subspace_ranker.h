#ifndef HICS_OUTLIER_SUBSPACE_RANKER_H_
#define HICS_OUTLIER_SUBSPACE_RANKER_H_

#include <vector>

#include "common/dataset.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/subspace.h"
#include "engine/prepared_dataset.h"
#include "index/neighbor_searcher.h"
#include "outlier/outlier_scorer.h"

namespace hics {

/// The three scoring-backend tiers the ranking layer can hand an
/// (N objects, |S| dimensions) subspace workload to.
enum class ScoringBackend {
  /// kNN via KD-tree (pruned search; wins at low |S| with enough objects
  /// to amortize the build).
  kKdTree,
  /// kNN via the blocked brute-force SIMD kernel (flat in |S|; wins in
  /// the mid-N band where the tree stops pruning).
  kBruteSimd,
  /// O(N) histogram density (GridDensityScorer): no neighbor search at
  /// all, so past its crossover N it beats *both* kNN backends by
  /// widening margins — the million-point tier.
  kGrid,
};

/// Ranking-layer policy: which scoring backend fits an (N, |S|) subspace
/// workload. The kNN backends return bit-identical scores to each other,
/// so kKdTree vs kBruteSimd is purely a wall-clock crossover; kGrid is a
/// *different estimator* (histogram density instead of kNN distances)
/// that the caller may only adopt when the scorer semantics allow it —
/// it is returned where the grid tier's O(N) fit beats batched all-kNN
/// outright. Crossover constants are calibrated by
/// `bench_density_backends` (committed record:
/// BENCH_density_backends.json) and `bench_knn_backends`
/// (BENCH_knn_backends.json); re-run them when changing the kernels or
/// build flags.
ScoringBackend ChooseScoringBackend(std::size_t num_objects,
                                    std::size_t num_dimensions);

/// kNN-only policy used by the neighbor-based scorers and the serving
/// layer's searcher choice. Delegates to ChooseScoringBackend and maps
/// its kGrid verdict back onto the better *kNN* backend for the workload
/// (a caller asking for neighbors cannot use the grid tier), so large-N
/// subspaces keep their calibrated KD-tree/brute choice.
KnnBackend ChooseKnnBackend(std::size_t num_objects,
                            std::size_t num_dimensions);

/// How per-subspace scores are combined into the final score.
enum class ScoreAggregation {
  /// Definition 1 in the paper: score(x) = (1/|RS|) sum_S score_S(x).
  /// Cumulative: deviating in several subspaces raises the total. The
  /// paper's default.
  kAverage,
  /// max_S score_S(x). Sensitive to fluctuations; the paper reports it
  /// degrades with many subspaces (checked by bench_ablation_aggregation).
  kMax,
};

/// Aggregates per-subspace score vectors (all of equal length) into one
/// final score per object.
std::vector<double> AggregateScores(
    const std::vector<std::vector<double>>& per_subspace_scores,
    ScoreAggregation aggregation);

/// The outlier-ranking half of the decoupled pipeline: runs `scorer` on
/// every subspace in `subspaces` and aggregates. With an empty subspace
/// list, scores the full space (traditional outlier ranking).
///
/// `num_threads` scores subspaces concurrently on the shared thread pool
/// (1 = serial, 0 = hardware concurrency). Each subspace's scores land in
/// a pre-sized slot and aggregation runs over the slots in subspace
/// order, so the result is byte-identical for every thread count. The
/// scorer must tolerate concurrent ScoreSubspace calls (all shipped
/// scorers are stateless).
std::vector<double> RankWithSubspaces(const Dataset& dataset,
                                      const std::vector<Subspace>& subspaces,
                                      const OutlierScorer& scorer,
                                      ScoreAggregation aggregation =
                                          ScoreAggregation::kAverage,
                                      std::size_t num_threads = 1);

/// Convenience overload for scored subspaces (scores ignored; only the
/// projections matter for ranking).
std::vector<double> RankWithSubspaces(
    const Dataset& dataset, const std::vector<ScoredSubspace>& subspaces,
    const OutlierScorer& scorer,
    ScoreAggregation aggregation = ScoreAggregation::kAverage,
    std::size_t num_threads = 1);

/// Prepared-path ranking: scores each subspace through
/// OutlierScorer::ScoreSubspaceCached, so projected searchers, kNN tables
/// and whole score vectors are drawn from (and published to) `prepared`'s
/// artifact cache. A warm cache turns repeated rankings of one dataset —
/// the serving pattern — into cache lookups plus one aggregation pass.
/// Byte-identical to the Dataset overload for every cache state and
/// thread count.
std::vector<double> RankWithSubspaces(const PreparedDataset& prepared,
                                      const std::vector<Subspace>& subspaces,
                                      const OutlierScorer& scorer,
                                      ScoreAggregation aggregation =
                                          ScoreAggregation::kAverage,
                                      std::size_t num_threads = 1);

/// Prepared-path convenience overload for scored subspaces.
std::vector<double> RankWithSubspaces(
    const PreparedDataset& prepared,
    const std::vector<ScoredSubspace>& subspaces, const OutlierScorer& scorer,
    ScoreAggregation aggregation = ScoreAggregation::kAverage,
    std::size_t num_threads = 1);

/// Caller consent for sharded scoring semantics (DESIGN.md §5i). Sharded
/// scoring is exact only for scorers that merge per-shard state without
/// approximation (OutlierScorer::SupportsExactShardedMerge — the
/// grid-density tier); for neighbor-based scorers the sharded path falls
/// back to the per-shard approximation, which is a *different estimator*
/// than unsharded scoring. That semantic change must be an explicit
/// caller decision, never a silent fallback.
enum class ShardedScoringPolicy {
  /// Error (InvalidArgument) unless the scorer merges exactly — the
  /// ranking is then bit-identical to the unsharded prepared path.
  kRequireExactMerge,
  /// Permit the per-shard approximation for non-merging scorers (each
  /// shard scored against its own rows, concatenated in shard order).
  kAllowApproximation,
};

/// Sharded ranking: scores each subspace through
/// OutlierScorer::ScoreSubspaceSharded and aggregates in subspace order,
/// byte-identical for every thread count. With an empty subspace list,
/// scores the full space. Fails (never silently degrades) when `policy`
/// is kRequireExactMerge and the scorer cannot merge exactly.
Result<std::vector<double>> RankWithSubspacesSharded(
    const ShardPlane& sharded, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    ShardedScoringPolicy policy, std::size_t num_threads = 1);

/// Sharded convenience overload for scored subspaces.
Result<std::vector<double>> RankWithSubspacesSharded(
    const ShardPlane& sharded,
    const std::vector<ScoredSubspace>& subspaces, const OutlierScorer& scorer,
    ScoreAggregation aggregation, ShardedScoringPolicy policy,
    std::size_t num_threads = 1);

/// One isolated per-subspace failure observed during degraded ranking.
struct SubspaceFailure {
  Subspace subspace;
  Status status;
};

/// Outcome of fault-isolated subspace ranking. HiCS is an ensemble
/// (Definition 1 averages over the selected subspaces), so the aggregate
/// stays meaningful when individual members drop out; `scores` is the
/// aggregation over the `succeeded` subspaces only — the average
/// renormalizes automatically because AggregateScores divides by the
/// number of score vectors it is given.
struct DegradedRankingResult {
  /// Aggregated scores over the subspaces that scored successfully.
  /// Empty iff `succeeded == 0` (the caller decides on a fallback).
  std::vector<double> scores;
  std::size_t attempted = 0;   ///< subspaces whose scoring was started
  std::size_t succeeded = 0;   ///< subspaces that produced valid scores
  /// Isolated failures (injected faults, non-finite scorer output, ...),
  /// in subspace order. Interruptions are not failures; they set the
  /// flags below instead.
  std::vector<SubspaceFailure> failures;
  bool cancelled = false;           ///< stopped early: cancellation
  bool deadline_exceeded = false;   ///< stopped early: deadline
};

/// Fault-isolated, context-aware ranking: scores each subspace through
/// OutlierScorer::ScoreSubspaceChecked, skips and records subspaces whose
/// scorer fails, and stops early (keeping the aggregate over the subspaces
/// already scored) when the context is cancelled or past its deadline.
/// Never fails itself; with an empty `subspaces` list it returns an empty
/// result with attempted == 0 so the caller can fall back to full-space
/// scoring.
///
/// `num_threads` (1 = serial, 0 = hardware concurrency) scores subspaces
/// concurrently; each call passes its subspace index as the fault
/// ordinal, so injected fault placement — and therefore the surviving
/// ensemble and its aggregate — is byte-identical for every thread
/// count. On interruption the serial path stops before the next subspace
/// in order, while the parallel path additionally keeps any later
/// subspaces that had already completed (both aggregate only completed
/// members, in subspace order). `failures` is in subspace order either
/// way.
DegradedRankingResult RankWithSubspacesDegraded(
    const Dataset& dataset, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    const RunContext& ctx, std::size_t num_threads = 1);

/// Prepared-path degraded ranking: same fault-isolation contract as the
/// Dataset overload, scored through ScoreSubspacePreparedChecked so
/// healthy subspaces hit the artifact cache. The checkpoint and fault
/// probe run before any cache access, so injected fault placement — and
/// the surviving ensemble — is byte-identical between cold and warm runs,
/// and a failed or skipped subspace never populates the cache.
DegradedRankingResult RankWithSubspacesDegraded(
    const PreparedDataset& prepared, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    const RunContext& ctx, std::size_t num_threads = 1);

}  // namespace hics

#endif  // HICS_OUTLIER_SUBSPACE_RANKER_H_
