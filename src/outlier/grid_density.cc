#include "outlier/grid_density.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "engine/sharded_dataset.h"
#include "simd/simd.h"
#include "stats/descriptive.h"

namespace hics {

namespace {

/// Meta-channel layout (trained state channel 0).
constexpr std::size_t kMetaDims = 0;
constexpr std::size_t kMetaBins = 1;
constexpr std::size_t kMetaSmooth = 2;
constexpr std::size_t kMetaTotal = 3;
constexpr std::size_t kMetaMean = 4;
constexpr std::size_t kMetaSigma = 5;
constexpr std::size_t kMetaFixed = 6;  // lo[dims] then width[dims] follow

/// Rows per parallel gather chunk (mirrors the grid's binning chunk).
constexpr std::size_t kGatherChunk = 8192;

/// Per-point density estimates f_i: the point's cell occupancy, smoothed
/// over the 2|S| face-adjacent cells when requested. Chunks write
/// disjoint ranges of exact integer counts, so the gather is
/// bit-identical for every thread count.
std::vector<double> GatherDensities(const Dataset& dataset,
                                    const Subspace& subspace,
                                    const SubspaceGrid& grid, bool smooth,
                                    std::size_t num_threads) {
  const std::size_t n = dataset.num_objects();
  std::vector<double> density(n, 0.0);
  const std::size_t num_chunks = (n + kGatherChunk - 1) / kGatherChunk;
  if (!smooth && grid.has_point_keys()) {
    const std::span<const std::uint64_t> keys = grid.point_keys();
    ParallelFor(0, num_chunks, num_threads, [&](std::size_t c) {
      const std::size_t begin = c * kGatherChunk;
      const std::size_t end = std::min(n, begin + kGatherChunk);
      for (std::size_t i = begin; i < end; ++i) {
        density[i] = static_cast<double>(grid.CountForKey(keys[i]));
      }
    });
    return density;
  }
  if (!smooth) {
    // Keyless grid (the cached/streaming-carried form): re-bin each point
    // through the same canonical per-axis bin mapping the build used.
    // Lands on the identical cell key the retained point_keys() would
    // have held, so the densities — and every downstream score — are
    // bit-identical to the keyed gather's.
    const std::size_t dims = subspace.size();
    const std::size_t workers = ParallelWorkerCount(num_chunks, num_threads);
    std::vector<std::uint32_t> scratch(workers * dims);
    ParallelForWorker(
        0, num_chunks, num_threads, [&](std::size_t c, std::size_t w) {
          std::uint32_t* bins = scratch.data() + w * dims;
          const std::size_t begin = c * kGatherChunk;
          const std::size_t end = std::min(n, begin + kGatherChunk);
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < dims; ++j) {
              bins[j] = grid.BinOf(dataset.Column(subspace[j])[i], j);
            }
            density[i] = static_cast<double>(grid.CountForKey(grid.KeyOfBins(
                std::span<const std::uint32_t>(bins, dims))));
          }
        });
    return density;
  }
  const std::size_t dims = subspace.size();
  const std::size_t workers = ParallelWorkerCount(num_chunks, num_threads);
  std::vector<std::uint32_t> scratch(workers * dims);
  ParallelForWorker(
      0, num_chunks, num_threads, [&](std::size_t c, std::size_t w) {
        std::uint32_t* bins = scratch.data() + w * dims;
        const std::size_t begin = c * kGatherChunk;
        const std::size_t end = std::min(n, begin + kGatherChunk);
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < dims; ++j) {
            bins[j] = grid.BinOf(dataset.Column(subspace[j])[i], j);
          }
          density[i] = static_cast<double>(
              grid.SmoothedCount(std::span<const std::uint32_t>(bins, dims)));
        }
      });
  return density;
}

/// mean and sample stddev of the density vector through the canonical
/// SIMD moment kernels (bit-identical across tiers).
std::pair<double, double> DensityMoments(std::span<const double> density) {
  const double mean = stats::Mean(density);
  const double sigma = std::sqrt(stats::SampleVariance(density));
  return {mean, sigma};
}

std::uint64_t KeyAt(const std::vector<double>& key_pairs, std::size_t idx) {
  const std::uint64_t low = static_cast<std::uint64_t>(key_pairs[2 * idx]);
  const std::uint64_t high =
      static_cast<std::uint64_t>(key_pairs[2 * idx + 1]);
  return (high << 32) | low;
}

}  // namespace

GridDensityScorer::GridDensityScorer(const GridDensityParams& params)
    : params_(params) {
  HICS_CHECK_GT(params_.bins_per_dim, 0u);
}

std::vector<double> GridDensityScorer::ScoreWithGrid(
    const Dataset& dataset, const Subspace& subspace,
    const SubspaceGrid& grid) const {
  const std::size_t n = dataset.num_objects();
  if (n < 2) return std::vector<double>(n, 0.0);
  const std::vector<double> density = GatherDensities(
      dataset, subspace, grid, params_.smooth, params_.num_threads);
  const auto [mean, sigma] = DensityMoments(density);
  std::vector<double> scores(n, 0.0);
  // Degenerate distribution (all points in one cell): nothing is more
  // outlying than anything else.
  if (!(sigma > 0.0)) return scores;
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = (mean - density[i]) / sigma;
  }
  return scores;
}

std::vector<double> GridDensityScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  GridOptions options;
  options.bins_per_dim = params_.bins_per_dim;
  options.num_threads = params_.num_threads;
  options.keep_point_keys = !params_.smooth;
  const SubspaceGrid grid(dataset, subspace, options);
  return ScoreWithGrid(dataset, subspace, grid);
}

std::vector<double> GridDensityScorer::ScoreSubspaceSharded(
    const ShardPlane& sharded, const Subspace& subspace) const {
  GridOptions options;
  options.bins_per_dim = params_.bins_per_dim;
  options.num_threads = params_.num_threads;
  // Cached grids never retain point keys: the cache outlives the call,
  // and on a streaming plane object ids shift with every slide, so only
  // the keyless form can survive (and be carried). The gather re-bins per
  // point, landing on identical densities.
  options.keep_point_keys = false;

  // Every shard bins against the GLOBAL ranges, so a row's cell key is
  // the same one the full-dataset grid would assign it; shard grids then
  // merge by pure integer count addition. The cache key encodes the
  // range bits (GridArtifactKey), so a cached shard grid can only ever
  // be served against the exact bounds it was binned with.
  std::vector<std::pair<double, double>> ranges(subspace.size());
  for (std::size_t j = 0; j < subspace.size(); ++j) {
    ranges[j] = sharded.GlobalAttributeRange(subspace[j]);
  }
  const std::string grid_key =
      GridArtifactKey(params_.bins_per_dim, false, ranges);

  const std::size_t num_shards = sharded.num_shards();
  std::vector<std::shared_ptr<const SubspaceGrid>> shard_grids(num_shards);
  ParallelFor(0, num_shards, params_.num_threads, [&](std::size_t s) {
    ArtifactCache& cache = sharded.shard(s).cache();
    if (std::shared_ptr<const void> hit =
            cache.FindGridErased(grid_key, subspace)) {
      shard_grids[s] = std::static_pointer_cast<const SubspaceGrid>(hit);
      return;
    }
    auto built = std::make_shared<const SubspaceGrid>(
        sharded.shard(s).dataset(), subspace,
        std::span<const std::pair<double, double>>(ranges), options);
    shard_grids[s] = std::static_pointer_cast<const SubspaceGrid>(
        cache.InsertGridErased(grid_key, subspace, built,
                               built->ApproxMemoryBytes()));
  });
  std::vector<const SubspaceGrid*> grid_ptrs(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    grid_ptrs[s] = shard_grids[s].get();
  }
  const SubspaceGrid merged = SubspaceGrid::MergeShards(
      std::span<const SubspaceGrid* const>(grid_ptrs));
  return ScoreWithGrid(sharded.dataset(), subspace, merged);
}

std::vector<double> GridDensityScorer::ScoreSubspacePrepared(
    const PreparedDataset& prepared, const Subspace& subspace) const {
  GridOptions options;
  options.bins_per_dim = params_.bins_per_dim;
  options.num_threads = params_.num_threads;
  // Keyless, like the sharded path: the grid is published to the
  // prepared artifact's cache, where the streaming plane can carry it
  // across a window slide by exact retire/admit (only possible without
  // retained point keys — ids shift). Densities are identical either way.
  options.keep_point_keys = false;
  // Ranges come from the prepared artifact (no column rescan); the grid
  // — and therefore every score — is identical to the cold path's.
  std::vector<std::pair<double, double>> ranges(subspace.size());
  for (std::size_t j = 0; j < subspace.size(); ++j) {
    ranges[j] = prepared.AttributeRange(subspace[j]);
  }
  const std::string grid_key =
      GridArtifactKey(params_.bins_per_dim, false, ranges);
  ArtifactCache& cache = prepared.cache();
  std::shared_ptr<const SubspaceGrid> grid;
  if (std::shared_ptr<const void> hit =
          cache.FindGridErased(grid_key, subspace)) {
    grid = std::static_pointer_cast<const SubspaceGrid>(hit);
  } else {
    auto built = std::make_shared<const SubspaceGrid>(
        prepared.dataset(), subspace,
        std::span<const std::pair<double, double>>(ranges), options);
    grid = std::static_pointer_cast<const SubspaceGrid>(
        cache.InsertGridErased(grid_key, subspace, built,
                               built->ApproxMemoryBytes()));
  }
  return ScoreWithGrid(prepared.dataset(), subspace, *grid);
}

std::string GridDensityScorer::cache_key() const {
  return "grid-density:bins=" + std::to_string(params_.bins_per_dim) +
         ":smooth=" + std::string(params_.smooth ? "1" : "0");
}

TrainedScorerState GridDensityScorer::BuildTrainedStatePrepared(
    const PreparedDataset& prepared, const Subspace& subspace) const {
  GridOptions options;
  options.bins_per_dim = params_.bins_per_dim;
  options.num_threads = params_.num_threads;
  options.keep_point_keys = !params_.smooth;
  const SubspaceGrid grid(prepared, subspace, options);
  const std::vector<double> density =
      GatherDensities(prepared.dataset(), subspace, grid, params_.smooth,
                      params_.num_threads);
  const auto [mean, sigma] = DensityMoments(density);

  const std::size_t dims = subspace.size();
  TrainedScorerState state;
  state.channels.resize(kStateChannels);

  std::vector<double>& meta = state.channels[0];
  meta.resize(kMetaFixed + 2 * dims);
  meta[kMetaDims] = static_cast<double>(dims);
  meta[kMetaBins] = static_cast<double>(params_.bins_per_dim);
  meta[kMetaSmooth] = params_.smooth ? 1.0 : 0.0;
  meta[kMetaTotal] = static_cast<double>(grid.total_objects());
  meta[kMetaMean] = mean;
  meta[kMetaSigma] = sigma;
  for (std::size_t j = 0; j < dims; ++j) {
    meta[kMetaFixed + j] = grid.lo(j);
    meta[kMetaFixed + dims + j] = grid.width(j);
  }

  // Cells serialize in NonEmptyCells' ascending-key order, so a freshly
  // fitted state and a save/load round trip are byte-identical and
  // out-of-sample lookups can binary-search the key channel.
  const auto cells = grid.NonEmptyCells();
  std::vector<double>& key_pairs = state.channels[1];
  std::vector<double>& counts = state.channels[2];
  key_pairs.reserve(2 * cells.size());
  counts.reserve(cells.size());
  for (const auto& [key, count] : cells) {
    key_pairs.push_back(static_cast<double>(key & 0xFFFFFFFFULL));
    key_pairs.push_back(static_cast<double>(key >> 32));
    counts.push_back(static_cast<double>(count));
  }
  return state;
}

double GridDensityScorer::ScoreOutOfSamplePoint(
    std::span<const double> projected, const TrainedScorerState& state) const {
  HICS_CHECK_EQ(state.channels.size(), kStateChannels);
  const std::vector<double>& meta = state.channels[0];
  const std::vector<double>& key_pairs = state.channels[1];
  const std::vector<double>& counts = state.channels[2];

  const std::size_t dims = static_cast<std::size_t>(meta[kMetaDims]);
  HICS_CHECK_EQ(projected.size(), dims);
  const std::size_t bins_per_dim =
      static_cast<std::size_t>(meta[kMetaBins]);
  const bool smooth = meta[kMetaSmooth] != 0.0;
  const double mean = meta[kMetaMean];
  const double sigma = meta[kMetaSigma];
  if (!(sigma > 0.0)) return 0.0;

  const double max_bin = static_cast<double>(bins_per_dim - 1);
  const bool hashed = GridKeysHashed(bins_per_dim, dims);
  std::vector<std::uint32_t> bins(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    const double lo = meta[kMetaFixed + j];
    const double width = meta[kMetaFixed + dims + j];
    const double scale = static_cast<double>(bins_per_dim) / width;
    bins[j] = simd::BinIndexOne(projected[j], lo, scale, max_bin);
  }

  const std::size_t num_cells = counts.size();
  const auto count_for = [&](std::uint64_t key) -> double {
    std::size_t lo_i = 0;
    std::size_t hi_i = num_cells;
    while (lo_i < hi_i) {
      const std::size_t mid = lo_i + (hi_i - lo_i) / 2;
      if (KeyAt(key_pairs, mid) < key) {
        lo_i = mid + 1;
      } else {
        hi_i = mid;
      }
    }
    if (lo_i < num_cells && KeyAt(key_pairs, lo_i) == key) {
      return counts[lo_i];
    }
    return 0.0;
  };

  double f = count_for(GridCellKey(bins, bins_per_dim, hashed));
  if (smooth) {
    for (std::size_t j = 0; j < dims; ++j) {
      const std::uint32_t center = bins[j];
      if (center > 0) {
        bins[j] = center - 1;
        f += count_for(GridCellKey(bins, bins_per_dim, hashed));
      }
      if (center + 1 < bins_per_dim) {
        bins[j] = center + 1;
        f += count_for(GridCellKey(bins, bins_per_dim, hashed));
      }
      bins[j] = center;
    }
  }
  return (mean - f) / sigma;
}

Status GridDensityScorer::ValidateTrainedState(const TrainedScorerState& state,
                                               std::size_t dims,
                                               std::size_t num_objects) {
  if (state.channels.size() != kStateChannels) {
    return Status::InvalidArgument(
        "grid-density state must have " + std::to_string(kStateChannels) +
        " channels, got " + std::to_string(state.channels.size()));
  }
  const std::vector<double>& meta = state.channels[0];
  const std::vector<double>& key_pairs = state.channels[1];
  const std::vector<double>& counts = state.channels[2];
  if (meta.size() != kMetaFixed + 2 * dims) {
    return Status::InvalidArgument(
        "grid-density meta channel has " + std::to_string(meta.size()) +
        " values, expected " + std::to_string(kMetaFixed + 2 * dims) +
        " for a " + std::to_string(dims) + "-attribute subspace");
  }
  for (double v : meta) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "grid-density meta channel contains a non-finite value");
    }
  }
  if (static_cast<std::size_t>(meta[kMetaDims]) != dims) {
    return Status::InvalidArgument(
        "grid-density state dimensionality " +
        std::to_string(static_cast<std::size_t>(meta[kMetaDims])) +
        " does not match subspace size " + std::to_string(dims));
  }
  if (!(meta[kMetaBins] >= 1.0)) {
    return Status::InvalidArgument("grid-density state has bins_per_dim < 1");
  }
  if (meta[kMetaSmooth] != 0.0 && meta[kMetaSmooth] != 1.0) {
    return Status::InvalidArgument(
        "grid-density state smooth flag must be 0 or 1");
  }
  if (static_cast<std::size_t>(meta[kMetaTotal]) != num_objects) {
    return Status::InvalidArgument(
        "grid-density state was fitted on " +
        std::to_string(static_cast<std::size_t>(meta[kMetaTotal])) +
        " objects, model claims " + std::to_string(num_objects));
  }
  if (!(meta[kMetaSigma] >= 0.0)) {
    return Status::InvalidArgument(
        "grid-density state has negative density stddev");
  }
  for (std::size_t j = 0; j < dims; ++j) {
    if (!(meta[kMetaFixed + dims + j] > 0.0)) {
      return Status::InvalidArgument(
          "grid-density state has non-positive width for axis " +
          std::to_string(j));
    }
  }
  if (key_pairs.size() != 2 * counts.size()) {
    return Status::InvalidArgument(
        "grid-density key channel length " +
        std::to_string(key_pairs.size()) + " does not match " +
        std::to_string(counts.size()) + " cell counts");
  }
  constexpr double kTwo32 = 4294967296.0;
  for (double half : key_pairs) {
    if (!(half >= 0.0 && half < kTwo32) ||
        half != std::floor(half)) {
      return Status::InvalidArgument(
          "grid-density key channel contains a non-integral or "
          "out-of-range half-key");
    }
  }
  double count_sum = 0.0;
  std::uint64_t prev_key = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const std::uint64_t key = KeyAt(key_pairs, c);
    if (c > 0 && key <= prev_key) {
      return Status::InvalidArgument(
          "grid-density cell keys are not strictly ascending");
    }
    prev_key = key;
    const double count = counts[c];
    if (!(count >= 1.0) || count != std::floor(count)) {
      return Status::InvalidArgument(
          "grid-density cell counts must be positive integers");
    }
    count_sum += count;
  }
  if (count_sum != meta[kMetaTotal]) {
    return Status::InvalidArgument(
        "grid-density cell counts sum to " + std::to_string(count_sum) +
        ", expected " + std::to_string(meta[kMetaTotal]));
  }
  return Status::OK();
}

}  // namespace hics
