#include "outlier/subspace_ranker.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "engine/sharded_dataset.h"

namespace hics {

namespace {

/// The kNN-family crossover, calibrated from BENCH_knn_backends.json
/// (all-kNN wall clock per backend over an (N, |S|) grid, k = 10, index
/// build included, avx512-dispatched SIMD screen kernels): the KD-tree
/// wins through |S| <= 4 at every measured N but only holds on through
/// |S| <= 6 once N reaches ~4000 — the vectorized Gram-screen tile sped
/// the blocked brute-force kernel up enough to reclaim the
/// (N=2000, |S|=6) cell that the pre-SIMD calibration gave to the tree.
/// Past the crossover the curse of dimensionality flattens the tree's
/// pruning while the brute kernel's cost stays nearly flat in |S|. Below
/// the measured range the whole decision is sub-100us — brute force
/// avoids betting on an unmeasured tree-build constant there.
KnnBackend KdVsBrute(std::size_t num_objects, std::size_t num_dimensions) {
  constexpr std::size_t kKdTreeMinObjects = 256;
  constexpr std::size_t kKdTreeMaxDims = 4;
  constexpr std::size_t kKdTreeExtendedMinObjects = 4000;
  constexpr std::size_t kKdTreeExtendedMaxDims = 6;
  if (num_objects >= kKdTreeMinObjects &&
      num_dimensions <= kKdTreeMaxDims) {
    return KnnBackend::kKdTree;
  }
  if (num_objects >= kKdTreeExtendedMinObjects &&
      num_dimensions <= kKdTreeExtendedMaxDims) {
    return KnnBackend::kKdTree;
  }
  return KnnBackend::kBruteForce;
}

}  // namespace

ScoringBackend ChooseScoringBackend(std::size_t num_objects,
                                    std::size_t num_dimensions) {
  // Grid crossover calibrated from BENCH_density_backends.json (end-to-end
  // per-subspace scoring wall clock, bins = 16, k = 10, grid build +
  // gather vs batched all-kNN + kNN-average, avx512-dispatched): the O(N)
  // grid tier beats both kNN backends at every measured cell from
  // N = 2048 on — ~100x at N = 2048, ~200-4000x at N = 2^15 — and at
  // N = 10^6 it scores a subspace in tens of milliseconds where the kNN
  // backends are not feasible per-subspace at all. The floor is
  // nevertheless set where the *better kNN backend* stops being cheap
  // (>= ~50 ms per subspace at N = 2^15): below it the kNN estimators'
  // distance-based fidelity costs next to nothing, so they keep the band
  // ChooseKnnBackend was calibrated on; above it the histogram estimator
  // is the only one that scales, and the margin only widens with N.
  constexpr std::size_t kGridMinObjects = 32768;
  if (num_objects >= kGridMinObjects) return ScoringBackend::kGrid;
  return KdVsBrute(num_objects, num_dimensions) == KnnBackend::kKdTree
             ? ScoringBackend::kKdTree
             : ScoringBackend::kBruteSimd;
}

KnnBackend ChooseKnnBackend(std::size_t num_objects,
                            std::size_t num_dimensions) {
  switch (ChooseScoringBackend(num_objects, num_dimensions)) {
    case ScoringBackend::kKdTree:
      return KnnBackend::kKdTree;
    case ScoringBackend::kBruteSimd:
      return KnnBackend::kBruteForce;
    case ScoringBackend::kGrid:
      // The caller needs neighbors; fall back to the better kNN backend
      // for the workload instead of the grid tier it cannot use.
      return KdVsBrute(num_objects, num_dimensions);
  }
  return KnnBackend::kBruteForce;
}

std::vector<double> AggregateScores(
    const std::vector<std::vector<double>>& per_subspace_scores,
    ScoreAggregation aggregation) {
  HICS_CHECK(!per_subspace_scores.empty());
  const std::size_t n = per_subspace_scores.front().size();
  for (const auto& scores : per_subspace_scores) {
    HICS_CHECK_EQ(scores.size(), n);
  }
  std::vector<double> result(n, 0.0);
  switch (aggregation) {
    case ScoreAggregation::kAverage: {
      for (const auto& scores : per_subspace_scores) {
        for (std::size_t i = 0; i < n; ++i) result[i] += scores[i];
      }
      const double inv = 1.0 / static_cast<double>(per_subspace_scores.size());
      for (double& v : result) v *= inv;
      break;
    }
    case ScoreAggregation::kMax: {
      result = per_subspace_scores.front();
      for (std::size_t s = 1; s < per_subspace_scores.size(); ++s) {
        for (std::size_t i = 0; i < n; ++i) {
          result[i] = std::max(result[i], per_subspace_scores[s][i]);
        }
      }
      break;
    }
  }
  return result;
}

std::vector<double> RankWithSubspaces(const Dataset& dataset,
                                      const std::vector<Subspace>& subspaces,
                                      const OutlierScorer& scorer,
                                      ScoreAggregation aggregation,
                                      std::size_t num_threads) {
  if (subspaces.empty()) return scorer.ScoreFullSpace(dataset);
  // Pre-sized slots: each subspace's vector lands at its own index, so the
  // aggregation consumes them in subspace order regardless of which worker
  // finished first — the result is byte-identical to the serial run.
  std::vector<std::vector<double>> per_subspace(subspaces.size());
  ParallelFor(0, subspaces.size(), num_threads, [&](std::size_t i) {
    per_subspace[i] = scorer.ScoreSubspace(dataset, subspaces[i]);
  });
  return AggregateScores(per_subspace, aggregation);
}

std::vector<double> RankWithSubspaces(
    const Dataset& dataset, const std::vector<ScoredSubspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    std::size_t num_threads) {
  std::vector<Subspace> plain;
  plain.reserve(subspaces.size());
  for (const ScoredSubspace& s : subspaces) plain.push_back(s.subspace);
  return RankWithSubspaces(dataset, plain, scorer, aggregation, num_threads);
}

std::vector<double> RankWithSubspaces(const PreparedDataset& prepared,
                                      const std::vector<Subspace>& subspaces,
                                      const OutlierScorer& scorer,
                                      ScoreAggregation aggregation,
                                      std::size_t num_threads) {
  if (subspaces.empty()) {
    return scorer.ScoreSubspaceCached(prepared,
                                      prepared.dataset().FullSpace());
  }
  std::vector<std::vector<double>> per_subspace(subspaces.size());
  ParallelFor(0, subspaces.size(), num_threads, [&](std::size_t i) {
    per_subspace[i] = scorer.ScoreSubspaceCached(prepared, subspaces[i]);
  });
  return AggregateScores(per_subspace, aggregation);
}

std::vector<double> RankWithSubspaces(
    const PreparedDataset& prepared,
    const std::vector<ScoredSubspace>& subspaces, const OutlierScorer& scorer,
    ScoreAggregation aggregation, std::size_t num_threads) {
  std::vector<Subspace> plain;
  plain.reserve(subspaces.size());
  for (const ScoredSubspace& s : subspaces) plain.push_back(s.subspace);
  return RankWithSubspaces(prepared, plain, scorer, aggregation, num_threads);
}

Result<std::vector<double>> RankWithSubspacesSharded(
    const ShardPlane& sharded, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    ShardedScoringPolicy policy, std::size_t num_threads) {
  if (policy == ShardedScoringPolicy::kRequireExactMerge &&
      !scorer.SupportsExactShardedMerge()) {
    return Status::InvalidArgument(
        "scorer '" + scorer.name() +
        "' cannot merge per-shard scores exactly; sharded ranking with it "
        "is a per-shard approximation — pass "
        "ShardedScoringPolicy::kAllowApproximation to opt in");
  }
  if (subspaces.empty()) {
    return scorer.ScoreSubspaceSharded(sharded,
                                       sharded.dataset().FullSpace());
  }
  std::vector<std::vector<double>> per_subspace(subspaces.size());
  ParallelFor(0, subspaces.size(), num_threads, [&](std::size_t i) {
    per_subspace[i] = scorer.ScoreSubspaceSharded(sharded, subspaces[i]);
  });
  return AggregateScores(per_subspace, aggregation);
}

Result<std::vector<double>> RankWithSubspacesSharded(
    const ShardPlane& sharded,
    const std::vector<ScoredSubspace>& subspaces, const OutlierScorer& scorer,
    ScoreAggregation aggregation, ShardedScoringPolicy policy,
    std::size_t num_threads) {
  std::vector<Subspace> plain;
  plain.reserve(subspaces.size());
  for (const ScoredSubspace& s : subspaces) plain.push_back(s.subspace);
  return RankWithSubspacesSharded(sharded, plain, scorer, aggregation, policy,
                                  num_threads);
}

namespace {

/// Serial degraded ranking over any per-subspace scoring callable
/// `score(subspace, ordinal) -> Result<vector<double>>`: subspaces are
/// attempted strictly in order and an interruption stops before the next
/// one starts. The Dataset and PreparedDataset entry points share this
/// (and the parallel twin below) so their degraded semantics cannot
/// drift.
template <typename ScoreFn>
DegradedRankingResult RankDegradedSerial(const std::vector<Subspace>& subspaces,
                                         ScoreAggregation aggregation,
                                         const RunContext& ctx,
                                         const ScoreFn& score) {
  DegradedRankingResult result;
  std::vector<std::vector<double>> per_subspace;
  per_subspace.reserve(subspaces.size());
  for (std::size_t i = 0; i < subspaces.size(); ++i) {
    const Subspace& subspace = subspaces[i];
    const Status progress = ctx.CheckProgress();
    if (!progress.ok()) {
      result.cancelled = progress.code() == StatusCode::kCancelled;
      result.deadline_exceeded =
          progress.code() == StatusCode::kDeadlineExceeded;
      break;
    }
    ++result.attempted;
    Result<std::vector<double>> scores = score(subspace, i + 1);
    if (scores.ok()) {
      ++result.succeeded;
      per_subspace.push_back(std::move(scores).ValueOrDie());
      continue;
    }
    const StatusCode code = scores.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      result.cancelled = code == StatusCode::kCancelled;
      result.deadline_exceeded = code == StatusCode::kDeadlineExceeded;
      break;
    }
    result.failures.push_back({subspace, scores.status()});
  }
  if (!per_subspace.empty()) {
    result.scores = AggregateScores(per_subspace, aggregation);
  }
  return result;
}

/// Parallel degraded ranking: per-subspace outcomes land in pre-sized
/// slots and are assembled in subspace order, so healthy runs match the
/// serial path bit for bit (each scorer call carries its subspace index as
/// the fault ordinal, pinning injected faults to the same subspaces).
template <typename ScoreFn>
DegradedRankingResult RankDegradedParallel(
    const std::vector<Subspace>& subspaces, ScoreAggregation aggregation,
    const RunContext& ctx, std::size_t num_threads, const ScoreFn& score) {
  enum class SlotState : char { kPending, kOk, kFailed };
  DegradedRankingResult result;
  std::vector<SlotState> state(subspaces.size(), SlotState::kPending);
  std::vector<std::vector<double>> slot_scores(subspaces.size());
  std::vector<Status> slot_status(subspaces.size());
  std::atomic<std::size_t> attempted{0};

  const Status level_status = ParallelTryFor(
      0, subspaces.size(), num_threads,
      [&](std::size_t i) -> Status {
        HICS_RETURN_NOT_OK(ctx.CheckProgress());
        attempted.fetch_add(1, std::memory_order_relaxed);
        Result<std::vector<double>> scores = score(subspaces[i], i + 1);
        if (scores.ok()) {
          slot_scores[i] = std::move(scores).ValueOrDie();
          state[i] = SlotState::kOk;
          return Status::OK();
        }
        const StatusCode code = scores.status().code();
        if (code == StatusCode::kCancelled ||
            code == StatusCode::kDeadlineExceeded) {
          return scores.status();  // interruption: winds the ranking down
        }
        slot_status[i] = scores.status();
        state[i] = SlotState::kFailed;
        return Status::OK();  // isolated failure: keep ranking
      },
      [&ctx] { return ctx.ShouldStop(); });

  result.attempted = attempted.load(std::memory_order_relaxed);
  if (!level_status.ok()) {
    result.cancelled = level_status.code() == StatusCode::kCancelled;
    result.deadline_exceeded =
        level_status.code() == StatusCode::kDeadlineExceeded;
  } else if (std::find(state.begin(), state.end(), SlotState::kPending) !=
             state.end()) {
    // Holes without an error: the should_stop wind-down skipped work.
    const Status progress = ctx.CheckProgress();
    result.cancelled = progress.code() == StatusCode::kCancelled;
    result.deadline_exceeded =
        progress.code() == StatusCode::kDeadlineExceeded;
  }

  std::vector<std::vector<double>> per_subspace;
  per_subspace.reserve(subspaces.size());
  for (std::size_t i = 0; i < subspaces.size(); ++i) {
    switch (state[i]) {
      case SlotState::kOk:
        ++result.succeeded;
        per_subspace.push_back(std::move(slot_scores[i]));
        break;
      case SlotState::kFailed:
        result.failures.push_back({subspaces[i], std::move(slot_status[i])});
        break;
      case SlotState::kPending:
        break;
    }
  }
  if (!per_subspace.empty()) {
    result.scores = AggregateScores(per_subspace, aggregation);
  }
  return result;
}

template <typename ScoreFn>
DegradedRankingResult RankDegraded(const std::vector<Subspace>& subspaces,
                                   ScoreAggregation aggregation,
                                   const RunContext& ctx,
                                   std::size_t num_threads,
                                   const ScoreFn& score) {
  if (ParallelWorkerCount(subspaces.size(), num_threads) <= 1) {
    return RankDegradedSerial(subspaces, aggregation, ctx, score);
  }
  return RankDegradedParallel(subspaces, aggregation, ctx, num_threads, score);
}

}  // namespace

DegradedRankingResult RankWithSubspacesDegraded(
    const Dataset& dataset, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    const RunContext& ctx, std::size_t num_threads) {
  return RankDegraded(
      subspaces, aggregation, ctx, num_threads,
      [&](const Subspace& subspace, std::size_t ordinal) {
        return scorer.ScoreSubspaceChecked(dataset, subspace, ctx, ordinal);
      });
}

DegradedRankingResult RankWithSubspacesDegraded(
    const PreparedDataset& prepared, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    const RunContext& ctx, std::size_t num_threads) {
  return RankDegraded(
      subspaces, aggregation, ctx, num_threads,
      [&](const Subspace& subspace, std::size_t ordinal) {
        return scorer.ScoreSubspacePreparedChecked(prepared, subspace, ctx,
                                                   ordinal);
      });
}

}  // namespace hics
