#include "outlier/subspace_ranker.h"

#include <algorithm>

#include "common/check.h"

namespace hics {

std::vector<double> AggregateScores(
    const std::vector<std::vector<double>>& per_subspace_scores,
    ScoreAggregation aggregation) {
  HICS_CHECK(!per_subspace_scores.empty());
  const std::size_t n = per_subspace_scores.front().size();
  for (const auto& scores : per_subspace_scores) {
    HICS_CHECK_EQ(scores.size(), n);
  }
  std::vector<double> result(n, 0.0);
  switch (aggregation) {
    case ScoreAggregation::kAverage: {
      for (const auto& scores : per_subspace_scores) {
        for (std::size_t i = 0; i < n; ++i) result[i] += scores[i];
      }
      const double inv = 1.0 / static_cast<double>(per_subspace_scores.size());
      for (double& v : result) v *= inv;
      break;
    }
    case ScoreAggregation::kMax: {
      result = per_subspace_scores.front();
      for (std::size_t s = 1; s < per_subspace_scores.size(); ++s) {
        for (std::size_t i = 0; i < n; ++i) {
          result[i] = std::max(result[i], per_subspace_scores[s][i]);
        }
      }
      break;
    }
  }
  return result;
}

std::vector<double> RankWithSubspaces(const Dataset& dataset,
                                      const std::vector<Subspace>& subspaces,
                                      const OutlierScorer& scorer,
                                      ScoreAggregation aggregation) {
  if (subspaces.empty()) return scorer.ScoreFullSpace(dataset);
  std::vector<std::vector<double>> per_subspace;
  per_subspace.reserve(subspaces.size());
  for (const Subspace& s : subspaces) {
    per_subspace.push_back(scorer.ScoreSubspace(dataset, s));
  }
  return AggregateScores(per_subspace, aggregation);
}

std::vector<double> RankWithSubspaces(
    const Dataset& dataset, const std::vector<ScoredSubspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation) {
  std::vector<Subspace> plain;
  plain.reserve(subspaces.size());
  for (const ScoredSubspace& s : subspaces) plain.push_back(s.subspace);
  return RankWithSubspaces(dataset, plain, scorer, aggregation);
}

DegradedRankingResult RankWithSubspacesDegraded(
    const Dataset& dataset, const std::vector<Subspace>& subspaces,
    const OutlierScorer& scorer, ScoreAggregation aggregation,
    const RunContext& ctx) {
  DegradedRankingResult result;
  std::vector<std::vector<double>> per_subspace;
  per_subspace.reserve(subspaces.size());
  for (const Subspace& subspace : subspaces) {
    const Status progress = ctx.CheckProgress();
    if (!progress.ok()) {
      result.cancelled = progress.code() == StatusCode::kCancelled;
      result.deadline_exceeded =
          progress.code() == StatusCode::kDeadlineExceeded;
      break;
    }
    ++result.attempted;
    Result<std::vector<double>> scores =
        scorer.ScoreSubspaceChecked(dataset, subspace, ctx);
    if (scores.ok()) {
      ++result.succeeded;
      per_subspace.push_back(std::move(scores).ValueOrDie());
      continue;
    }
    const StatusCode code = scores.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      result.cancelled = code == StatusCode::kCancelled;
      result.deadline_exceeded = code == StatusCode::kDeadlineExceeded;
      break;
    }
    result.failures.push_back({subspace, scores.status()});
  }
  if (!per_subspace.empty()) {
    result.scores = AggregateScores(per_subspace, aggregation);
  }
  return result;
}

}  // namespace hics
