#ifndef HICS_OUTLIER_LOCI_H_
#define HICS_OUTLIER_LOCI_H_

#include <string>
#include <vector>

#include "outlier/outlier_scorer.h"

namespace hics {

/// LOCI -- Local Correlation Integral (Papadimitriou et al., ICDE 2003),
/// cited by the paper as a density-based LOF alternative ([25]). For every
/// object and a schedule of radii r, LOCI compares the object's
/// r/2-neighborhood count n(p, r/2) with the average such count over its
/// r-neighbors, via the multi-granularity deviation factor
///   MDEF(p, r) = 1 - n(p, r/2) / mean_{q in N(p,r)} n(q, r/2).
/// The score reported here is the maximum over the radius schedule of
/// MDEF normalized by its neighborhood standard deviation (sigma_MDEF) --
/// objects whose normalized MDEF is large (> 3 in the original paper) are
/// outliers.
///
/// This is the exact (quadratic) LOCI; the aLOCI approximation is out of
/// scope. Provided as another pluggable instantiation of the ranking step.
struct LociParams {
  /// Number of radii probed between r_min and r_max (geometric schedule).
  std::size_t num_radii = 8;
  /// Neighborhood must hold at least this many objects before MDEF is
  /// trusted (original paper uses 20; small datasets may need less).
  std::size_t min_neighbors = 20;
};

class LociScorer : public OutlierScorer {
 public:
  explicit LociScorer(LociParams params = {}) : params_(params) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  std::string name() const override { return "loci"; }

  /// Both parameters shape the radius schedule / MDEF gating, so both are
  /// part of the score identity.
  std::string cache_key() const override {
    return "loci:radii=" + std::to_string(params_.num_radii) +
           ":minnbrs=" + std::to_string(params_.min_neighbors);
  }

 private:
  LociParams params_;
};

}  // namespace hics

#endif  // HICS_OUTLIER_LOCI_H_
