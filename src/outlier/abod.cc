#include "outlier/abod.h"

#include <cmath>
#include <vector>

#include "index/neighbor_searcher.h"
#include "outlier/outlier_scorer.h"

namespace hics {

std::vector<double> AbodScorer::ScoreSubspace(const Dataset& dataset,
                                              const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  const std::size_t dim = subspace.size();
  std::vector<double> scores(n, 0.0);
  if (n < 3) return scores;
  const std::size_t k = ClampNeighborhoodSize(params_.k, n, "abod");

  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  // One batched sweep replaces the n per-query scans; the angle statistics
  // below consume the rows in place.
  KnnResultTable table;
  searcher->QueryAllKnn(k, &table);

  std::vector<double> p(dim), va(dim), vb(dim);
  for (std::size_t i = 0; i < n; ++i) {
    dataset.ProjectObject(i, subspace, &p);
    const auto nbrs = table.Row(i);

    // Distance-weighted cosine statistics over neighbor pairs (a, b):
    // weight 1 / (|pa|^2 * |pb|^2) as in the original ABOF.
    double sum_w = 0.0;
    double sum_wf = 0.0;
    double sum_wf2 = 0.0;
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      dataset.ProjectObject(nbrs[a].id, subspace, &va);
      for (std::size_t d = 0; d < dim; ++d) va[d] -= p[d];
      const double norm_a2 = nbrs[a].distance * nbrs[a].distance;
      if (norm_a2 <= 0.0) continue;
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        dataset.ProjectObject(nbrs[b].id, subspace, &vb);
        for (std::size_t d = 0; d < dim; ++d) vb[d] -= p[d];
        const double norm_b2 = nbrs[b].distance * nbrs[b].distance;
        if (norm_b2 <= 0.0) continue;
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) dot += va[d] * vb[d];
        const double w = 1.0 / (norm_a2 * norm_b2);
        // f = angle term scaled by distances: <va,vb>/(|va|^2 |vb|^2).
        const double f = dot / (norm_a2 * norm_b2);
        sum_w += w;
        sum_wf += w * f;
        sum_wf2 += w * f * f;
      }
    }
    if (sum_w <= 0.0) {
      // Degenerate (duplicates everywhere): treat as inlier-neutral.
      scores[i] = 0.0;
      continue;
    }
    const double mean = sum_wf / sum_w;
    const double abof = std::max(sum_wf2 / sum_w - mean * mean, 0.0);
    scores[i] = -abof;  // low angle variance = outlier = high score
  }
  return scores;
}

}  // namespace hics
