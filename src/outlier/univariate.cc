#include "outlier/univariate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace hics {

namespace {

std::vector<double> ZScores(const std::vector<double>& values) {
  std::vector<double> scores(values.size(), 0.0);
  const double mean = stats::Mean(values);
  const double sd = stats::StdDev(values);
  if (sd <= 0.0) return scores;
  for (std::size_t i = 0; i < values.size(); ++i) {
    scores[i] = std::fabs(values[i] - mean) / sd;
  }
  return scores;
}

std::vector<double> RobustZScores(const std::vector<double>& values) {
  std::vector<double> scores(values.size(), 0.0);
  const double median = stats::Median(values);
  std::vector<double> abs_dev(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    abs_dev[i] = std::fabs(values[i] - median);
  }
  // 1.4826 makes the MAD a consistent sigma estimator under normality.
  const double mad = 1.4826 * stats::Median(abs_dev);
  if (mad <= 0.0) return scores;
  for (std::size_t i = 0; i < values.size(); ++i) {
    scores[i] = abs_dev[i] / mad;
  }
  return scores;
}

std::vector<double> IqrScores(const std::vector<double>& values) {
  std::vector<double> scores(values.size(), 0.0);
  const double q1 = stats::Quantile(values, 0.25);
  const double q3 = stats::Quantile(values, 0.75);
  const double iqr = q3 - q1;
  if (iqr <= 0.0) return scores;
  const double lo = q1 - 1.5 * iqr;
  const double hi = q3 + 1.5 * iqr;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < lo) {
      scores[i] = (lo - values[i]) / iqr;
    } else if (values[i] > hi) {
      scores[i] = (values[i] - hi) / iqr;
    }
  }
  return scores;
}

}  // namespace

std::vector<double> UnivariateDeviations(const std::vector<double>& values,
                                         UnivariateMethod method) {
  if (values.empty()) return {};
  switch (method) {
    case UnivariateMethod::kZScore:
      return ZScores(values);
    case UnivariateMethod::kRobustZScore:
      return RobustZScores(values);
    case UnivariateMethod::kIqr:
      return IqrScores(values);
  }
  return std::vector<double>(values.size(), 0.0);
}

std::vector<double> UnivariateScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  std::vector<double> scores(dataset.num_objects(), 0.0);
  for (std::size_t dim : subspace) {
    const std::vector<double> per_attr =
        UnivariateDeviations(dataset.Column(dim), method_);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      scores[i] = std::max(scores[i], per_attr[i]);
    }
  }
  return scores;
}

std::string UnivariateScorer::name() const {
  switch (method_) {
    case UnivariateMethod::kZScore:
      return "uni-zscore";
    case UnivariateMethod::kRobustZScore:
      return "uni-robust";
    case UnivariateMethod::kIqr:
      return "uni-iqr";
  }
  return "uni";
}

namespace {

/// Maps scores to their normalized average ranks in [0, 1].
std::vector<double> RankNormalize(const std::vector<double>& scores) {
  const std::vector<double> ranks = stats::AverageRanks(scores);
  std::vector<double> normalized(scores.size(), 0.0);
  if (scores.size() <= 1) return normalized;
  const double denom = static_cast<double>(scores.size() - 1);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    normalized[i] = (ranks[i] - 1.0) / denom;
  }
  return normalized;
}

}  // namespace

std::vector<double> CombineTrivialAndSubspaceScores(
    const std::vector<double>& trivial_scores,
    const std::vector<double>& subspace_scores, double weight_trivial) {
  HICS_CHECK_EQ(trivial_scores.size(), subspace_scores.size());
  HICS_CHECK_GE(weight_trivial, 0.0);
  const std::vector<double> trivial_rank = RankNormalize(trivial_scores);
  const std::vector<double> subspace_rank = RankNormalize(subspace_scores);
  std::vector<double> combined(trivial_scores.size(), 0.0);
  for (std::size_t i = 0; i < combined.size(); ++i) {
    combined[i] =
        std::max(weight_trivial * trivial_rank[i], subspace_rank[i]);
  }
  return combined;
}

}  // namespace hics
