#include "outlier/outres.h"

#include <algorithm>
#include <cmath>

#include "index/neighbor_searcher.h"
#include "stats/descriptive.h"

namespace hics {

double OutresScorer::Bandwidth(std::size_t dims,
                               std::size_t num_objects) const {
  // Silverman-style optimal rate: h ~ n^(-1/(d+4)), scaled so that d = 1
  // with n = 1000 reproduces base_bandwidth, and growing with sqrt(d) so
  // higher-dimensional neighborhoods keep comparable expected counts
  // (OUTRES §4.1's epsilon adaptation).
  const double d = static_cast<double>(dims);
  const double n = static_cast<double>(std::max<std::size_t>(num_objects, 2));
  const double rate = std::pow(n, -1.0 / (d + 4.0));
  const double reference = std::pow(1000.0, -1.0 / 5.0);
  return params_.base_bandwidth * std::sqrt(d) * rate / reference;
}

std::vector<double> OutresScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  std::vector<double> scores(n, 0.0);
  if (n < 3) return scores;
  const std::size_t dims = subspace.size();
  const double h = Bandwidth(dims, n);

  const auto searcher = MakeBruteForceSearcher(dataset, subspace);

  // Pass 1: adaptive Epanechnikov kernel density of every object:
  // den(o) = sum_{p in N_h(o)} (1 - (dist/h)^2).
  std::vector<double> density(n, 0.0);
  std::vector<std::vector<Neighbor>> neighborhoods(n);
  for (std::size_t i = 0; i < n; ++i) {
    neighborhoods[i] = searcher->QueryRadius(i, h);
    double den = 0.0;
    for (const Neighbor& nb : neighborhoods[i]) {
      const double u = nb.distance / h;
      den += 1.0 - u * u;
    }
    density[i] = den;
  }

  // Pass 2: deviation of each object's density against its neighborhood's
  // density distribution.
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nbrs = neighborhoods[i];
    if (nbrs.size() < 2) {
      // Isolated at this bandwidth: maximally deviating by definition;
      // give it the neighborhood-free fallback score based on global
      // density statistics below.
      continue;
    }
    stats::RunningStats neighborhood_density;
    for (const Neighbor& nb : nbrs) neighborhood_density.Add(density[nb.id]);
    const double mean = neighborhood_density.mean();
    const double sd = neighborhood_density.stddev();
    if (sd <= 0.0) continue;
    const double gap = mean - density[i];
    if (gap > params_.deviation_factor * sd) {
      scores[i] = gap / (params_.deviation_factor * sd);
    }
  }

  // Fallback for isolated objects: score above every in-neighborhood
  // deviator, ordered by how empty their surroundings are.
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  for (std::size_t i = 0; i < n; ++i) {
    if (neighborhoods[i].size() < 2) {
      scores[i] = max_score + 1.0 +
                  1.0 / (1.0 + static_cast<double>(neighborhoods[i].size()));
    }
  }
  return scores;
}

}  // namespace hics
