#include "outlier/outlier_scorer.h"

#include <cmath>
#include <cstdio>
#include <mutex>
#include <set>
#include <utility>

#include "engine/sharded_dataset.h"

namespace hics {

std::size_t ClampNeighborhoodSize(std::size_t k, std::size_t num_objects,
                                  const char* who) {
  const std::size_t max_k = num_objects > 1 ? num_objects - 1 : 0;
  if (k <= max_k) return k;
  // Log each clamping call site once per process: a misconfigured k >= N
  // should be visible, but a ranking pass over hundreds of subspaces must
  // not repeat the line per subspace.
  static std::mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (warned->insert(who).second) {
      std::fprintf(stderr,
                   "hics: %s: neighborhood size k=%zu >= %zu objects; "
                   "clamping to %zu (every other object is a neighbor)\n",
                   who, k, num_objects, max_k);
    }
  }
  return max_k;
}

std::vector<double> OutlierScorer::ScoreSubspaceSharded(
    const ShardPlane& sharded, const Subspace& subspace) const {
  // Per-shard approximation: score each shard against its own rows only
  // and concatenate in shard order (= object-id order; the partition is
  // contiguous). Every shard's vector is deterministic on its own, so the
  // concatenation is too — but it is a different estimator than scoring
  // the full dataset; see the header contract.
  std::vector<double> scores;
  scores.reserve(sharded.num_objects());
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    // Cached variant: per-shard score vectors are memoized in each
    // shard's own ArtifactCache (bit-identical to the uncached compute by
    // the determinism discipline), so a streaming plane's untouched
    // shards serve their vectors as hits after a slide.
    const std::vector<double> shard_scores =
        ScoreSubspaceCached(sharded.shard(s), subspace);
    HICS_CHECK_EQ(shard_scores.size(), sharded.shard_size(s));
    scores.insert(scores.end(), shard_scores.begin(), shard_scores.end());
  }
  return scores;
}

double OutlierScorer::ScoreOutOfSample(std::span<const Neighbor> neighbors,
                                       const TrainedScorerState& state) const {
  (void)neighbors;
  (void)state;
  HICS_CHECK(false) << "scorer '" << name()
                    << "' does not support out-of-sample scoring";
  return 0.0;
}

double OutlierScorer::ScoreOutOfSamplePoint(
    std::span<const double> projected, const TrainedScorerState& state) const {
  (void)projected;
  (void)state;
  HICS_CHECK(false) << "scorer '" << name()
                    << "' does not support neighbor-free out-of-sample "
                       "scoring";
  return 0.0;
}

namespace {

/// Validates one scorer output: right size, every value finite. Reports
/// *all* non-finite indices (capped) instead of only the first, so one
/// degraded-run diagnostic names the whole blast radius of a bad
/// subspace.
Status ValidateScoreVector(const std::string& scorer_name,
                           const std::vector<double>& scores,
                           std::size_t num_objects,
                           const Subspace& subspace) {
  if (scores.size() != num_objects) {
    return Status::Internal(
        "scorer '" + scorer_name + "' returned " +
        std::to_string(scores.size()) + " scores for " +
        std::to_string(num_objects) + " objects in subspace " +
        subspace.ToString());
  }
  // Cap the listed indices: diagnostics must name the blast radius, not
  // serialize a million-object vector into one error string.
  constexpr std::size_t kMaxReportedIndices = 8;
  std::size_t bad_count = 0;
  std::string indices;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (std::isfinite(scores[i])) continue;
    ++bad_count;
    if (bad_count <= kMaxReportedIndices) {
      if (!indices.empty()) indices += ", ";
      indices += std::to_string(i);
    }
  }
  if (bad_count == 0) return Status::OK();
  std::string message = "scorer '" + scorer_name + "' produced " +
                        std::to_string(bad_count) +
                        " non-finite score(s) out of " +
                        std::to_string(scores.size()) + " for object(s) " +
                        indices;
  if (bad_count > kMaxReportedIndices) {
    message += ", ... (+" +
               std::to_string(bad_count - kMaxReportedIndices) + " more)";
  }
  message += " in subspace " + subspace.ToString();
  return Status::DataLoss(message);
}

bool AllFinite(const std::vector<double>& scores) {
  for (double v : scores) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<double>> OutlierScorer::ScoreSubspaceChecked(
    const Dataset& dataset, const Subspace& subspace, const RunContext& ctx,
    std::uint64_t fault_ordinal) const {
  HICS_RETURN_NOT_OK(ctx.CheckProgress());
  HICS_RETURN_NOT_OK(ctx.InjectFault("scorer." + name(), fault_ordinal));
  std::vector<double> scores = ScoreSubspace(dataset, subspace);
  HICS_RETURN_NOT_OK(ValidateScoreVector(name(), scores,
                                         dataset.num_objects(), subspace));
  return scores;
}

Result<std::vector<double>> OutlierScorer::ScoreSubspacePreparedChecked(
    const PreparedDataset& prepared, const Subspace& subspace,
    const RunContext& ctx, std::uint64_t fault_ordinal) const {
  // Checkpoint and fault probe BEFORE the cache: a warm run must observe
  // the exact fault placement of a cold run, and a fault-skipped subspace
  // must not be served from (or admitted to) the cache.
  HICS_RETURN_NOT_OK(ctx.CheckProgress());
  HICS_RETURN_NOT_OK(ctx.InjectFault("scorer." + name(), fault_ordinal));
  const std::string key = cache_key();
  if (!key.empty()) {
    if (auto hit = prepared.cache().FindScores(key, subspace)) {
      return std::vector<double>(*hit);
    }
  }
  std::vector<double> scores = ScoreSubspacePrepared(prepared, subspace);
  HICS_RETURN_NOT_OK(ValidateScoreVector(name(), scores,
                                         prepared.num_objects(), subspace));
  if (!key.empty()) {
    prepared.cache().InsertScores(key, subspace, scores);
  }
  return scores;
}

std::vector<double> OutlierScorer::ScoreSubspaceCached(
    const PreparedDataset& prepared, const Subspace& subspace) const {
  const std::string key = cache_key();
  if (key.empty()) return ScoreSubspacePrepared(prepared, subspace);
  if (auto hit = prepared.cache().FindScores(key, subspace)) {
    return std::vector<double>(*hit);
  }
  std::vector<double> scores = ScoreSubspacePrepared(prepared, subspace);
  // Same admission rule as the checked path: only finite, right-sized
  // vectors enter the cache, so a later degraded run can trust any hit.
  if (scores.size() == prepared.num_objects() && AllFinite(scores)) {
    prepared.cache().InsertScores(key, subspace, scores);
  }
  return scores;
}

}  // namespace hics
