#ifndef HICS_OUTLIER_GRID_DENSITY_H_
#define HICS_OUTLIER_GRID_DENSITY_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "cluster/grid.h"
#include "common/status.h"
#include "outlier/outlier_scorer.h"

namespace hics {

struct GridDensityParams {
  /// Equi-width bins per subspace axis.
  std::size_t bins_per_dim = 16;
  /// Von Neumann smoothing: a point's density is its cell count plus the
  /// 2|S| face-adjacent cells', damping bin-edge discretization at the
  /// cost of 2|S| extra O(1) probes per point.
  bool smooth = false;
  /// Parallelism of the binning/gather passes (1 = serial, 0 = hardware
  /// concurrency); never changes scores.
  std::size_t num_threads = 1;
};

/// O(N) histogram density scorer — the third scoring backend tier. One
/// pass bins every projected point into the equi-width SubspaceGrid
/// (src/cluster/grid.h), a point's density estimate f_i is its cell's
/// occupancy (optionally neighbor-smoothed), and its score is the
/// Z-score of *sparsity*:
///
///   score_i = (mean(f) - f_i) / stddev(f)
///
/// Points in sparse cells score high. The Z-standardization is the
/// dimensionality normalization (after arXiv 2004.13550): raw occupancy
/// shrinks as bins^|S| grows, but standardized scores stay comparable
/// across subspaces of different dimensionality — exactly what
/// HiCS-style averaging across subspaces needs.
///
/// Complexity: O(N·|S|) fit, O(1) per in-sample point, O(|S| + log C)
/// per out-of-sample query (C = occupied cells) — no neighbor search
/// anywhere, which is why the backend chooser hands large-N subspaces to
/// this tier (ChooseScoringBackend, bench_density_backends).
///
/// Determinism: binning runs the canonical SIMD bin_index kernel, the
/// moments run the canonical sum/sum_sq_dev kernels, and cell counts are
/// exact integers, so scores are bit-identical across SIMD tiers, thread
/// counts, dense/sparse grid layouts, and the cold/prepared paths.
class GridDensityScorer : public OutlierScorer {
 public:
  /// Trained-state channel layout (BuildTrainedStatePrepared):
  ///   0: meta [dims, bins, smooth, total, mean, sigma, lo..., width...]
  ///   1: occupied cell keys, ascending, as (low32, high32) double pairs
  ///   2: occupied cell counts, aligned with channel 1
  static constexpr std::size_t kStateChannels = 3;

  explicit GridDensityScorer(const GridDensityParams& params = {});

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  std::vector<double> ScoreSubspacePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const override;

  /// Exact histogram merge (DESIGN.md §5i): every shard builds its grid
  /// against the sharded plane's GLOBAL attribute ranges, so per-point
  /// cell keys match the unsharded grid's; the per-shard cell counts are
  /// then summed (SubspaceGrid::MergeShards) and the usual
  /// gather/moments/Z-score pass runs over the full dataset. Cell counts
  /// are additive integers, so the result is bit-identical to
  /// ScoreSubspacePrepared on the full dataset for any shard count.
  bool SupportsExactShardedMerge() const override { return true; }
  std::vector<double> ScoreSubspaceSharded(
      const ShardPlane& sharded, const Subspace& subspace) const override;

  std::string cache_key() const override;

  bool SupportsOutOfSample() const override { return true; }
  bool OutOfSampleNeedsNeighbors() const override { return false; }
  std::size_t NeighborhoodSize() const override { return 0; }

  TrainedScorerState BuildTrainedStatePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const override;

  double ScoreOutOfSamplePoint(std::span<const double> projected,
                               const TrainedScorerState& state) const override;

  /// Structural validation of a deserialized trained state for a
  /// `dims`-attribute subspace over `num_objects` training objects:
  /// channel count/lengths, ascending keys, positive counts summing to
  /// the training total, finite meta. The serving layer calls this on
  /// load so a tampered or truncated model file fails closed.
  static Status ValidateTrainedState(const TrainedScorerState& state,
                                     std::size_t dims,
                                     std::size_t num_objects);

  std::string name() const override { return "grid-density"; }

  const GridDensityParams& params() const { return params_; }

 private:
  std::vector<double> ScoreWithGrid(const Dataset& dataset,
                                    const Subspace& subspace,
                                    const SubspaceGrid& grid) const;

  GridDensityParams params_;
};

}  // namespace hics

#endif  // HICS_OUTLIER_GRID_DENSITY_H_
