#include "outlier/lof.h"

#include <algorithm>
#include <limits>
#include <span>

#include "common/parallel.h"
#include "index/neighbor_searcher.h"
#include "outlier/subspace_ranker.h"

namespace hics {

std::vector<double> LofScorer::ScoreSubspace(const Dataset& dataset,
                                             const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  if (n == 0) return {};
  const std::size_t k = ClampNeighborhoodSize(params_.min_pts, n, "lof");

  const KnnBackend backend =
      params_.backend == KnnBackend::kAuto
          ? ChooseKnnBackend(n, subspace.size())
          : params_.backend;
  const auto searcher = MakeSearcher(dataset, subspace, backend);

  // Pass 1: k-nearest neighborhoods and k-distances (the quadratic part)
  // through the batched all-kNN engine — one blocked sweep instead of n
  // independent scans; `use_batch_knn = false` keeps the per-query
  // reference path for benchmarking. Either way neighborhoods land in one
  // flat n*k table and the pass is worker-parallel and read-only on the
  // searcher.
  const std::size_t num_threads = params_.num_threads == 0
                                      ? DefaultNumThreads()
                                      : params_.num_threads;
  KnnResultTable table;
  if (params_.use_batch_knn) {
    searcher->QueryAllKnn(k, &table, num_threads);
  } else {
    searcher->QueryAllKnnPerQuery(k, &table, num_threads);
  }
  return ScoreFromTable(table, n, num_threads);
}

std::vector<double> LofScorer::ScoreSubspacePrepared(
    const PreparedDataset& prepared, const Subspace& subspace) const {
  const std::size_t n = prepared.num_objects();
  if (n == 0) return {};
  const std::size_t k = ClampNeighborhoodSize(params_.min_pts, n, "lof");
  const KnnBackend backend =
      params_.backend == KnnBackend::kAuto
          ? ChooseKnnBackend(n, subspace.size())
          : params_.backend;
  const std::size_t num_threads = params_.num_threads == 0
                                      ? DefaultNumThreads()
                                      : params_.num_threads;
  // Pass 1 comes from the artifact cache: the projected searcher and the
  // n*k table are built once per (k, subspace) and shared with every other
  // consumer of this PreparedDataset.
  const std::shared_ptr<const KnnResultTable> table =
      prepared.cache().GetKnnTable(subspace, backend, k, num_threads,
                                   params_.use_batch_knn);
  return ScoreFromTable(*table, n, num_threads);
}

void LofScorer::ComputeDensities(const KnnResultTable& table, std::size_t n,
                                 std::size_t num_threads,
                                 std::vector<double>* k_distance,
                                 std::vector<double>* lrd) const {
  k_distance->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = table.Row(i);
    (*k_distance)[i] = row.empty() ? 0.0 : row.back().distance;
  }

  // Pass 2: local reachability densities. Reads only pass-1 output, so the
  // objects are independent and the pass parallelizes directly.
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  lrd->assign(n, 0.0);
  ParallelFor(0, n, num_threads, [&](std::size_t i) {
    const auto nbrs = table.Row(i);
    if (nbrs.empty()) {
      (*lrd)[i] = kInfinity;
      return;
    }
    double sum_reach = 0.0;
    for (const Neighbor& nb : nbrs) {
      sum_reach += std::max((*k_distance)[nb.id], nb.distance);
    }
    // All-zero reachability (duplicate points): infinite density.
    (*lrd)[i] = sum_reach > 0.0
                    ? static_cast<double>(nbrs.size()) / sum_reach
                    : kInfinity;
  });
}

std::vector<double> LofScorer::ScoreFromTable(const KnnResultTable& table,
                                              std::size_t n,
                                              std::size_t num_threads) const {
  std::vector<double> scores(n, 1.0);
  std::vector<double> k_distance;
  std::vector<double> lrd;
  ComputeDensities(table, n, num_threads, &k_distance, &lrd);
  const auto neighbors_of = [&](std::size_t i) { return table.Row(i); };
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  // Pass 3: LOF = mean neighbor lrd ratio; independent per object like
  // pass 2.
  ParallelFor(0, n, num_threads, [&](std::size_t i) {
    const auto nbrs = neighbors_of(i);
    if (nbrs.empty()) {
      scores[i] = 1.0;
      return;
    }
    if (lrd[i] == kInfinity) {
      // Duplicate-heavy neighborhoods: object is at least as dense as its
      // neighbors, LOF defined as 1 (Breunig et al. §4 duplicate handling).
      scores[i] = 1.0;
      return;
    }
    double sum_ratio = 0.0;
    std::size_t finite_terms = 0;
    for (const Neighbor& nb : nbrs) {
      if (lrd[nb.id] == kInfinity) {
        // Neighbor infinitely denser: contributes the maximal ratio; clamp
        // by skipping and using the remaining terms (conservative).
        continue;
      }
      sum_ratio += lrd[nb.id] / lrd[i];
      ++finite_terms;
    }
    scores[i] = finite_terms > 0
                    ? sum_ratio / static_cast<double>(finite_terms)
                    : 1.0;
  });
  return scores;
}

TrainedScorerState LofScorer::BuildTrainedState(
    const KnnResultTable& table) const {
  TrainedScorerState state;
  state.channels.resize(2);
  ComputeDensities(table, table.num_queries(), /*num_threads=*/1,
                   &state.channels[0], &state.channels[1]);
  return state;
}

double LofScorer::ScoreOutOfSample(std::span<const Neighbor> neighbors,
                                   const TrainedScorerState& state) const {
  HICS_CHECK_EQ(state.channels.size(), 2u);
  const std::vector<double>& k_distance = state.channels[0];
  const std::vector<double>& lrd = state.channels[1];
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  if (neighbors.empty()) return 1.0;

  // The query's own lrd from its reachability against the trained
  // neighborhoods, then the usual mean lrd ratio — the same duplicate
  // handling as the in-sample pass 3 (infinite densities clamp to 1).
  double sum_reach = 0.0;
  for (const Neighbor& nb : neighbors) {
    HICS_DCHECK(nb.id < k_distance.size());
    sum_reach += std::max(k_distance[nb.id], nb.distance);
  }
  const double lrd_q =
      sum_reach > 0.0 ? static_cast<double>(neighbors.size()) / sum_reach
                      : kInfinity;
  if (lrd_q == kInfinity) return 1.0;
  double sum_ratio = 0.0;
  std::size_t finite_terms = 0;
  for (const Neighbor& nb : neighbors) {
    if (lrd[nb.id] == kInfinity) continue;
    sum_ratio += lrd[nb.id] / lrd_q;
    ++finite_terms;
  }
  return finite_terms > 0 ? sum_ratio / static_cast<double>(finite_terms)
                          : 1.0;
}

}  // namespace hics
