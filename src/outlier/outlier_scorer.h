#ifndef HICS_OUTLIER_OUTLIER_SCORER_H_
#define HICS_OUTLIER_OUTLIER_SCORER_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/subspace.h"

namespace hics {

/// Interface for a density-based outlier score score_S(x): given a dataset
/// and a subspace, produce one score per object, higher = more outlying.
///
/// This is the second step of the paper's decoupled processing: HiCS (or any
/// other subspace search) selects subspaces, and any implementation of this
/// interface ranks objects within them. The paper instantiates it with LOF
/// and names ORCA/OUTRES as future alternatives; this library ships LOF plus
/// two kNN-based scores to demonstrate the pluggability.
class OutlierScorer {
 public:
  virtual ~OutlierScorer() = default;

  /// Scores every object of `dataset` with distances restricted to
  /// `subspace`. Returns a vector of size dataset.num_objects().
  virtual std::vector<double> ScoreSubspace(const Dataset& dataset,
                                            const Subspace& subspace) const = 0;

  /// Scores in the full data space.
  std::vector<double> ScoreFullSpace(const Dataset& dataset) const {
    return ScoreSubspace(dataset, dataset.FullSpace());
  }

  /// Fallible entry point used by the degraded-execution pipeline: honors
  /// the context (cancellation/deadline checked up front), exposes the
  /// fault-injection site "scorer.<name>", and validates the output — a
  /// wrong-sized or non-finite score vector becomes a Status error naming
  /// the offending object instead of silently poisoning the aggregate.
  /// Scorer implementations may override to add internal checkpoints.
  ///
  /// `fault_ordinal`, when non-zero, is this call's 1-based position in
  /// the caller's logical scoring sequence (the subspace index in a
  /// ranking pass); the fault site is probed with it so fault placement
  /// is deterministic under parallel ranking. 0 counts by arrival order.
  virtual Result<std::vector<double>> ScoreSubspaceChecked(
      const Dataset& dataset, const Subspace& subspace, const RunContext& ctx,
      std::uint64_t fault_ordinal = 0) const {
    HICS_RETURN_NOT_OK(ctx.CheckProgress());
    HICS_RETURN_NOT_OK(ctx.InjectFault("scorer." + name(), fault_ordinal));
    std::vector<double> scores = ScoreSubspace(dataset, subspace);
    if (scores.size() != dataset.num_objects()) {
      return Status::Internal(
          "scorer '" + name() + "' returned " +
          std::to_string(scores.size()) + " scores for " +
          std::to_string(dataset.num_objects()) + " objects in subspace " +
          subspace.ToString());
    }
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (!std::isfinite(scores[i])) {
        return Status::DataLoss(
            "scorer '" + name() + "' produced a non-finite score for object " +
            std::to_string(i) + " in subspace " + subspace.ToString());
      }
    }
    return scores;
  }

  /// Short identifier, e.g. "lof".
  virtual std::string name() const = 0;
};

}  // namespace hics

#endif  // HICS_OUTLIER_OUTLIER_SCORER_H_
