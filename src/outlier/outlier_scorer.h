#ifndef HICS_OUTLIER_OUTLIER_SCORER_H_
#define HICS_OUTLIER_OUTLIER_SCORER_H_

#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/subspace.h"

namespace hics {

/// Interface for a density-based outlier score score_S(x): given a dataset
/// and a subspace, produce one score per object, higher = more outlying.
///
/// This is the second step of the paper's decoupled processing: HiCS (or any
/// other subspace search) selects subspaces, and any implementation of this
/// interface ranks objects within them. The paper instantiates it with LOF
/// and names ORCA/OUTRES as future alternatives; this library ships LOF plus
/// two kNN-based scores to demonstrate the pluggability.
class OutlierScorer {
 public:
  virtual ~OutlierScorer() = default;

  /// Scores every object of `dataset` with distances restricted to
  /// `subspace`. Returns a vector of size dataset.num_objects().
  virtual std::vector<double> ScoreSubspace(const Dataset& dataset,
                                            const Subspace& subspace) const = 0;

  /// Scores in the full data space.
  std::vector<double> ScoreFullSpace(const Dataset& dataset) const {
    return ScoreSubspace(dataset, dataset.FullSpace());
  }

  /// Short identifier, e.g. "lof".
  virtual std::string name() const = 0;
};

}  // namespace hics

#endif  // HICS_OUTLIER_OUTLIER_SCORER_H_
