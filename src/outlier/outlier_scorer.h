#ifndef HICS_OUTLIER_OUTLIER_SCORER_H_
#define HICS_OUTLIER_OUTLIER_SCORER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/subspace.h"
#include "engine/prepared_dataset.h"
#include "index/neighbor_searcher.h"

namespace hics {

class ShardPlane;  // engine/shard_plane.h

/// Clamps a neighborhood size `k` to the `num_objects - 1` possible
/// neighbors an in-sample query has, logging a one-line stderr diagnostic
/// the first time a given caller clamps (so a misconfigured k >= N is
/// visible instead of silently shrunk). Returns the effective k; 0 when
/// fewer than two objects exist. `who` names the clamping entry point in
/// the diagnostic, e.g. "lof".
std::size_t ClampNeighborhoodSize(std::size_t k, std::size_t num_objects,
                                  const char* who);

/// Per-subspace trained state a scorer needs to score *out-of-sample*
/// queries against a fitted dataset without refitting: scorer-defined
/// channels of per-training-object doubles (LOF stores the k-distance and
/// lrd of every training object; the kNN scorers need no state beyond the
/// searcher). Opaque to the serving layer, which only stores, serializes,
/// and hands it back to the scorer that built it.
struct TrainedScorerState {
  std::vector<std::vector<double>> channels;

  friend bool operator==(const TrainedScorerState& a,
                         const TrainedScorerState& b) {
    return a.channels == b.channels;
  }
};

/// Interface for a density-based outlier score score_S(x): given a dataset
/// and a subspace, produce one score per object, higher = more outlying.
///
/// This is the second step of the paper's decoupled processing: HiCS (or any
/// other subspace search) selects subspaces, and any implementation of this
/// interface ranks objects within them. The paper instantiates it with LOF
/// and names ORCA/OUTRES as future alternatives; this library ships LOF plus
/// two kNN-based scores to demonstrate the pluggability.
///
/// Two entry-point families:
///  - the (Dataset, Subspace) pair is the self-contained cold path;
///  - the (PreparedDataset, Subspace) pair draws shared derived state
///    (projected searchers, kNN tables, memoized score vectors) from the
///    prepared artifact, amortizing repeated scoring of one dataset. Both
///    families return bit-identical scores; the prepared path only trades
///    wall clock.
class OutlierScorer {
 public:
  virtual ~OutlierScorer() = default;

  /// Scores every object of `dataset` with distances restricted to
  /// `subspace`. Returns a vector of size dataset.num_objects().
  virtual std::vector<double> ScoreSubspace(const Dataset& dataset,
                                            const Subspace& subspace) const = 0;

  /// Prepared-path scoring: same contract and bit-identical result as
  /// ScoreSubspace, but derived state may come from `prepared`'s artifact
  /// cache instead of being rebuilt. The default adapter simply scores the
  /// prepared dataset's column store; searcher-based scorers override it
  /// to reuse cached searchers / kNN tables.
  virtual std::vector<double> ScoreSubspacePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const {
    return ScoreSubspace(prepared.dataset(), subspace);
  }

  /// Scores in the full data space.
  std::vector<double> ScoreFullSpace(const Dataset& dataset) const {
    return ScoreSubspace(dataset, dataset.FullSpace());
  }

  /// True when ScoreSubspaceSharded merges per-shard state *exactly*: its
  /// output is bit-identical to ScoreSubspacePrepared over the full
  /// dataset. The grid-density scorer merges histogram cell counts
  /// additively and qualifies; neighbor-based scorers (a point's kNN can
  /// cross shard boundaries) do not, and keep the default.
  virtual bool SupportsExactShardedMerge() const { return false; }

  /// Scores every object of the sharded dataset's full data against
  /// `subspace`, size sharded.num_objects(), in object-id order.
  ///
  /// Exact-merge scorers (SupportsExactShardedMerge() == true) override
  /// this to fit per-shard state against the sharded plane's GLOBAL
  /// attribute ranges and merge it exactly — bit-identical to the
  /// unsharded prepared path for any shard count.
  ///
  /// The default is the documented *per-shard approximation*: each shard
  /// is scored locally (ScoreSubspacePrepared on the shard's artifact,
  /// drawing on its own cache) and the vectors are concatenated in shard
  /// order. For neighborhood scorers this means a point's neighbors —
  /// and the normalization of its score — come from its own shard only;
  /// scores approach the unsharded ones as shards grow and are a
  /// legitimate estimator per shard, but they are NOT comparable to
  /// unsharded scores bit-for-bit. Callers opt in through
  /// ShardedScoringPolicy (subspace_ranker.h).
  virtual std::vector<double> ScoreSubspaceSharded(
      const ShardPlane& sharded, const Subspace& subspace) const;

  /// Fallible entry point used by the degraded-execution pipeline: honors
  /// the context (cancellation/deadline checked up front), exposes the
  /// fault-injection site "scorer.<name>", and validates the output — a
  /// wrong-sized or non-finite score vector becomes a Status error naming
  /// the offending objects instead of silently poisoning the aggregate.
  /// Scorer implementations may override to add internal checkpoints.
  ///
  /// `fault_ordinal`, when non-zero, is this call's 1-based position in
  /// the caller's logical scoring sequence (the subspace index in a
  /// ranking pass); the fault site is probed with it so fault placement
  /// is deterministic under parallel ranking. 0 counts by arrival order.
  virtual Result<std::vector<double>> ScoreSubspaceChecked(
      const Dataset& dataset, const Subspace& subspace, const RunContext& ctx,
      std::uint64_t fault_ordinal = 0) const;

  /// Prepared, fallible, *memoizing* entry point — what the prepared
  /// ranking paths call per subspace. Order of operations is part of the
  /// bit-identity contract with the cold path:
  ///  1. context checkpoint, then the "scorer.<name>" fault probe — both
  ///     happen *before* any cache access, so an injected fault fires on
  ///     the same ordinal whether the cache is cold or warm;
  ///  2. cache lookup under cache_key() (skipped for scorers that opt out
  ///     with an empty key); a hit returns the memoized vector;
  ///  3. on a miss, ScoreSubspacePrepared computes, the result is
  ///     validated, and only a *valid* result is published to the cache —
  ///     a failed or skipped subspace never populates (or poisons) it.
  Result<std::vector<double>> ScoreSubspacePreparedChecked(
      const PreparedDataset& prepared, const Subspace& subspace,
      const RunContext& ctx, std::uint64_t fault_ordinal = 0) const;

  /// Infallible memoizing variant for the non-degraded prepared ranking
  /// path: cache lookup, compute on miss, publish only finite
  /// right-sized results (the same validity rule the checked path
  /// enforces, so the two paths can never observe different cache
  /// contents for one key).
  std::vector<double> ScoreSubspaceCached(const PreparedDataset& prepared,
                                          const Subspace& subspace) const;

  /// Semantic identity of this scorer for the per-subspace score cache:
  /// two scorer instances with equal cache_key() must produce bit-identical
  /// ScoreSubspace output on every (dataset, subspace). The key must
  /// therefore encode every score-affecting parameter (k, bandwidths, ...)
  /// and must exclude pure performance knobs (threads, backend, batching),
  /// which by the library's determinism discipline never change scores.
  /// Returning "" (the default) opts the scorer out of score caching —
  /// the safe choice for scorers whose parameters are not represented.
  virtual std::string cache_key() const { return ""; }

  /// True when the scorer can score out-of-sample queries from trained
  /// state (BuildTrainedState / ScoreOutOfSample below). Scorers that only
  /// define in-sample semantics keep the default.
  virtual bool SupportsOutOfSample() const { return false; }

  /// The neighborhood size this scorer queries with (LOF's min_pts, the
  /// kNN scorers' k) before any dataset clamping; 0 for scorers without a
  /// neighborhood notion. The serving layer uses it to size searcher
  /// queries and trained kNN tables.
  virtual std::size_t NeighborhoodSize() const { return 0; }

  /// Builds the per-subspace trained state from the fitted dataset's
  /// all-kNN table for this subspace (row q = neighbors of training object
  /// q). Only meaningful when SupportsOutOfSample(); the default state is
  /// empty.
  virtual TrainedScorerState BuildTrainedState(
      const KnnResultTable& table) const {
    (void)table;
    return {};
  }

  /// Scores one out-of-sample query from its neighborhood among the
  /// *training* objects (`neighbors`, ascending (distance, id), nothing
  /// excluded) and the state built at fit time. Must not depend on other
  /// queries — serving batches in any split is bit-identical to one query
  /// at a time. CHECK-fails on scorers without out-of-sample support; the
  /// serving layer gates on SupportsOutOfSample() and returns a typed
  /// Status instead.
  virtual double ScoreOutOfSample(std::span<const Neighbor> neighbors,
                                  const TrainedScorerState& state) const;

  /// True when ScoreOutOfSample consumes a neighbor list — the serving
  /// layer then runs a kNN query per (query, subspace). Neighbor-free
  /// scorers (the grid-density tier answers from histogram state alone)
  /// return false, and serving skips the searcher entirely: O(1) per
  /// query instead of a tree descent or brute scan.
  virtual bool OutOfSampleNeedsNeighbors() const { return true; }

  /// Builds the per-subspace trained state directly from the prepared
  /// dataset — the fit path for scorers whose state is not a function of
  /// a kNN table (OutOfSampleNeedsNeighbors() == false). The default
  /// state is empty.
  virtual TrainedScorerState BuildTrainedStatePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const {
    (void)prepared;
    (void)subspace;
    return {};
  }

  /// Scores one out-of-sample query from its projected coordinates
  /// (`projected[j]` = query value of subspace attribute j) and the state
  /// built at fit time — the neighbor-free counterpart of
  /// ScoreOutOfSample, used when OutOfSampleNeedsNeighbors() is false.
  /// Same independence contract: must not depend on other queries.
  /// CHECK-fails on scorers that do not implement it.
  virtual double ScoreOutOfSamplePoint(std::span<const double> projected,
                                       const TrainedScorerState& state) const;

  /// Short identifier, e.g. "lof".
  virtual std::string name() const = 0;
};

}  // namespace hics

#endif  // HICS_OUTLIER_OUTLIER_SCORER_H_
