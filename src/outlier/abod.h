#ifndef HICS_OUTLIER_ABOD_H_
#define HICS_OUTLIER_ABOD_H_

#include <string>
#include <vector>

#include "outlier/outlier_scorer.h"

namespace hics {

/// FastABOD -- angle-based outlier detection (Kriegel, Schubert, Zimek,
/// KDD 2008), cited by the paper among the LOF-family extensions ([19]).
/// For an object p, consider the angles spanned by pairs of other objects
/// (a, b) as seen from p: an inlier surrounded by its cluster sees a wide,
/// varied range of angles, whereas an outlier at the data's rim sees all
/// other objects under a narrow angle cone. The angle-based outlier factor
/// is the variance of the distance-weighted cosine over pairs; FastABOD
/// restricts the pairs to the k nearest neighbors (O(N * k^2) after kNN).
///
/// LOW variance means outlier, so to fit this library's "higher = more
/// outlying" convention the reported score is -ABOF.
struct AbodParams {
  std::size_t k = 15;  ///< neighborhood whose pairs are evaluated
};

class AbodScorer : public OutlierScorer {
 public:
  explicit AbodScorer(AbodParams params = {}) : params_(params) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  std::string name() const override { return "abod"; }

  /// k is the only score-affecting parameter.
  std::string cache_key() const override {
    return "abod:k=" + std::to_string(params_.k);
  }

 private:
  AbodParams params_;
};

}  // namespace hics

#endif  // HICS_OUTLIER_ABOD_H_
