#include "outlier/orca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/random.h"
#include "index/distance.h"
#include "outlier/outlier_scorer.h"

namespace hics {

namespace {

/// Fixed-capacity max-heap of the k smallest squared distances seen so far
/// for one candidate object.
class NearestK {
 public:
  explicit NearestK(std::size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// True once k distances have been collected.
  bool full() const { return heap_.size() >= k_; }

  /// Largest of the k current nearest distances (infinite until full).
  double Worst() const {
    return full() ? heap_.front()
                  : std::numeric_limits<double>::infinity();
  }

  void Add(double d2) {
    if (heap_.size() < k_) {
      heap_.push_back(d2);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (d2 < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = d2;
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Average of the stored (sqrt'd) distances.
  double AverageDistance() const {
    if (heap_.empty()) return 0.0;
    double sum = 0.0;
    for (double d2 : heap_) sum += std::sqrt(d2);
    return sum / static_cast<double>(heap_.size());
  }

  /// Upper bound of the final average distance: even if every remaining
  /// neighbor were at distance 0, the average cannot drop below the
  /// current sum spread over k slots -- but for pruning we need the
  /// opposite direction: the average over the k current entries only
  /// *shrinks* as closer neighbors arrive, so the current average is an
  /// upper bound once the heap is full.
  double UpperBoundAverage() const { return AverageDistance(); }

 private:
  std::size_t k_;
  std::vector<double> heap_;  // squared distances, max-heap
};

}  // namespace

std::vector<OrcaOutlier> OrcaTopOutliers(const Dataset& dataset,
                                         const Subspace& subspace,
                                         const OrcaParams& params,
                                         OrcaRunInfo* info) {
  HICS_CHECK_GT(params.k, 0u);
  HICS_CHECK_GT(params.top_n, 0u);
  const std::size_t n = dataset.num_objects();
  const std::size_t dim = subspace.size();
  HICS_CHECK_GT(dim, 0u);
  // k >= N used to be accepted silently (the nearest-k heaps simply never
  // filled, disabling the pruning cutoff); clamp to the n-1 possible
  // neighbors, which preserves every score, and say so.
  const std::size_t effective_k = ClampNeighborhoodSize(params.k, n, "orca");
  if (effective_k == 0) return {};
  OrcaRunInfo local_info;

  // Row-major projected copy, in randomized order: randomization makes the
  // expected number of distance computations near linear because early
  // neighbors quickly shrink candidates' score bounds below the cutoff.
  std::vector<double> points(n * dim);
  {
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d : subspace) points[out++] = dataset.Get(i, d);
    }
  }
  Rng rng(params.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  auto squared_distance = [&](std::size_t a, std::size_t b) {
    return SquaredDistance(&points[a * dim], &points[b * dim], dim);
  };

  // Top-n result heap ordered by ascending score: front = weakest outlier,
  // its score is the pruning cutoff.
  auto weaker = [](const OrcaOutlier& a, const OrcaOutlier& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::vector<OrcaOutlier> top;
  double cutoff = 0.0;

  // Process candidates in blocks (as in the original ORCA, which was
  // disk-block oriented); within a block each candidate keeps its own
  // nearest-k heap and is dropped once provably below the cutoff.
  constexpr std::size_t kBlockSize = 64;
  for (std::size_t begin = 0; begin < n; begin += kBlockSize) {
    const std::size_t end = std::min(n, begin + kBlockSize);
    std::vector<std::size_t> candidates(order.begin() + begin,
                                        order.begin() + end);
    std::vector<NearestK> nearest(candidates.size(), NearestK(effective_k));
    std::vector<bool> alive(candidates.size(), true);
    std::size_t alive_count = candidates.size();

    // Stream all objects (random order again) past the block.
    for (std::size_t probe_pos = 0; probe_pos < n && alive_count > 0;
         ++probe_pos) {
      const std::size_t probe = order[probe_pos];
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (!alive[c] || candidates[c] == probe) continue;
        nearest[c].Add(squared_distance(candidates[c], probe));
        ++local_info.distance_computations;
        // Prune: with a full heap the average only decreases from here on;
        // if it is already below the cutoff the candidate cannot reach the
        // top-n.
        if (top.size() >= params.top_n && nearest[c].full() &&
            nearest[c].UpperBoundAverage() < cutoff) {
          alive[c] = false;
          ++local_info.pruned_objects;
          --alive_count;
        }
      }
    }

    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (!alive[c]) continue;
      const double score = nearest[c].AverageDistance();
      if (top.size() < params.top_n) {
        top.push_back({candidates[c], score});
        std::push_heap(top.begin(), top.end(), weaker);
      } else if (score > top.front().score) {
        std::pop_heap(top.begin(), top.end(), weaker);
        top.back() = {candidates[c], score};
        std::push_heap(top.begin(), top.end(), weaker);
      }
      if (top.size() >= params.top_n) cutoff = top.front().score;
    }
  }

  // sort_heap with this comparator leaves the strongest outlier first.
  std::sort_heap(top.begin(), top.end(), weaker);
  if (info != nullptr) *info = local_info;
  return top;
}

}  // namespace hics
