#ifndef HICS_OUTLIER_LOF_H_
#define HICS_OUTLIER_LOF_H_

#include <string>
#include <vector>

#include "index/neighbor_searcher.h"
#include "outlier/outlier_scorer.h"

namespace hics {

/// LOF configuration.
struct LofParams {
  /// Neighborhood size (the paper's MinPts). Breunig et al. recommend
  /// 10-50; the experiments here use one shared value for all competitors,
  /// as the paper requires for comparability.
  std::size_t min_pts = 10;
  /// Neighbor-search backend. kAuto resolves per subspace through
  /// ChooseKnnBackend(N, |S|); scores are identical for every choice
  /// (backends agree bit for bit), only the wall clock differs.
  KnnBackend backend = KnnBackend::kAuto;
  /// Worker threads for the kNN pass (the quadratic part). 1 = serial,
  /// 0 = hardware concurrency. Scores are identical for any value.
  std::size_t num_threads = 1;
  /// Use the batched all-kNN engine for pass 1. Off = the pre-batching
  /// per-query reference path; scores are byte-identical either way
  /// (pinned by tests/knn_batch_test.cc), so this is a benchmarking and
  /// bisection knob, not a semantic one.
  bool use_batch_knn = true;
};

/// Local Outlier Factor (Breunig et al., SIGMOD 2000), restricted to an
/// arbitrary subspace as proposed by Lazarevic & Kumar (feature bagging)
/// and used by the HiCS paper.
///
/// LOF(p) = mean_{o in N_k(p)} lrd(o) / lrd(p) where
/// lrd(p) = 1 / mean_{o in N_k(p)} reach-dist_k(p, o) and
/// reach-dist_k(p, o) = max(k-distance(o), d(p, o)).
/// Scores near 1 mean inlier; larger means stronger local density drop.
class LofScorer : public OutlierScorer {
 public:
  explicit LofScorer(LofParams params = {}) : params_(params) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  /// Prepared path: draws the projected searcher and the n*k neighborhood
  /// table from `prepared`'s artifact cache (building and publishing them
  /// on first use), then runs the same pass-2/3 density math as the cold
  /// path. Bit-identical to ScoreSubspace for every backend/thread count.
  std::vector<double> ScoreSubspacePrepared(
      const PreparedDataset& prepared, const Subspace& subspace) const override;

  std::string name() const override { return "lof"; }

  /// MinPts is the only score-affecting parameter; backend, threads and
  /// batching are perf knobs pinned bit-identical by the kNN engine tests.
  std::string cache_key() const override {
    return "lof:minpts=" + std::to_string(params_.min_pts);
  }

  /// Out-of-sample support (src/serve): the trained state stores every
  /// training object's k-distance and lrd, and a query is scored as
  /// LOF(q) = mean_{o in N_k(q)} lrd(o) / lrd(q) with lrd(q) derived from
  /// the query's reachability against the trained neighborhoods — the
  /// standard novelty-detection LOF extension. Duplicate/degenerate
  /// handling mirrors the in-sample path (infinite densities clamp to 1).
  bool SupportsOutOfSample() const override { return true; }
  std::size_t NeighborhoodSize() const override { return params_.min_pts; }
  TrainedScorerState BuildTrainedState(
      const KnnResultTable& table) const override;
  double ScoreOutOfSample(std::span<const Neighbor> neighbors,
                          const TrainedScorerState& state) const override;

  const LofParams& params() const { return params_; }

 private:
  /// Passes 2-3 (lrd + LOF ratio) over an already-computed neighborhood
  /// table; shared verbatim by the cold and prepared paths so they cannot
  /// drift.
  std::vector<double> ScoreFromTable(const KnnResultTable& table,
                                     std::size_t n,
                                     std::size_t num_threads) const;

  /// Passes 1-2 (k-distance + lrd); shared by ScoreFromTable and
  /// BuildTrainedState so the serialized trained state is bit-identical
  /// to the densities the in-sample score used.
  void ComputeDensities(const KnnResultTable& table, std::size_t n,
                        std::size_t num_threads,
                        std::vector<double>* k_distance,
                        std::vector<double>* lrd) const;

  LofParams params_;
};

}  // namespace hics

#endif  // HICS_OUTLIER_LOF_H_
