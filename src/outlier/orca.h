#ifndef HICS_OUTLIER_ORCA_H_
#define HICS_OUTLIER_ORCA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/subspace.h"

namespace hics {

/// ORCA-style distance-based outlier detection (Bay & Schwabacher,
/// KDD 2003): mine the top-n outliers by average-kNN-distance in near
/// linear expected time, using a randomized processing order and a running
/// score cutoff that prunes an object as soon as its k nearest neighbors
/// so far already prove it cannot enter the top-n.
///
/// The HiCS paper names ORCA as the future-work replacement for LOF that
/// would make the ranking step linear instead of quadratic; this module
/// provides it, subspace-restricted like every other scorer here.
struct OrcaParams {
  std::size_t k = 5;       ///< neighbors of the average-distance score
  std::size_t top_n = 10;  ///< outliers to mine
  std::uint64_t seed = 1;  ///< randomization of the processing order
};

/// One mined outlier.
struct OrcaOutlier {
  std::size_t id = 0;
  double score = 0.0;  ///< average distance to the k nearest neighbors
};

/// Statistics of one run, for the pruning-effectiveness claims.
struct OrcaRunInfo {
  std::size_t distance_computations = 0;
  std::size_t pruned_objects = 0;
};

/// Mines the top-n outliers of `dataset` w.r.t. `subspace`. Results sorted
/// by descending score; exact (identical to the brute-force top-n), only
/// faster. `info` is optional.
std::vector<OrcaOutlier> OrcaTopOutliers(const Dataset& dataset,
                                         const Subspace& subspace,
                                         const OrcaParams& params,
                                         OrcaRunInfo* info = nullptr);

}  // namespace hics

#endif  // HICS_OUTLIER_ORCA_H_
