#include "outlier/knn_outlier.h"

#include <algorithm>

#include "common/parallel.h"
#include "index/neighbor_searcher.h"

namespace hics {

std::vector<double> KnnDistanceScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  std::vector<double> scores(n, 0.0);
  if (n < 2) return scores;
  const std::size_t k = std::min(k_, n - 1);
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  std::vector<std::vector<Neighbor>> buffers(
      ParallelWorkerCount(n, num_threads_));
  ParallelForWorker(0, n, num_threads_,
                    [&](std::size_t i, std::size_t worker) {
                      std::vector<Neighbor>& buffer = buffers[worker];
                      searcher->QueryKnn(i, k, &buffer);
                      scores[i] = buffer.empty() ? 0.0 : buffer.back().distance;
                    });
  return scores;
}

std::vector<double> KnnAverageScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  std::vector<double> scores(n, 0.0);
  if (n < 2) return scores;
  const std::size_t k = std::min(k_, n - 1);
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  std::vector<std::vector<Neighbor>> buffers(
      ParallelWorkerCount(n, num_threads_));
  ParallelForWorker(0, n, num_threads_,
                    [&](std::size_t i, std::size_t worker) {
                      std::vector<Neighbor>& buffer = buffers[worker];
                      searcher->QueryKnn(i, k, &buffer);
                      if (buffer.empty()) return;
                      double sum = 0.0;
                      for (const Neighbor& nb : buffer) sum += nb.distance;
                      scores[i] = sum / static_cast<double>(buffer.size());
                    });
  return scores;
}

}  // namespace hics
