#include "outlier/knn_outlier.h"

#include <algorithm>
#include <memory>

#include "index/neighbor_searcher.h"

namespace hics {

namespace {

std::vector<double> KthDistanceFromTable(const KnnResultTable& table,
                                         std::size_t n) {
  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = table.Row(i);
    scores[i] = row.empty() ? 0.0 : row.back().distance;
  }
  return scores;
}

std::vector<double> MeanDistanceFromTable(const KnnResultTable& table,
                                          std::size_t n) {
  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = table.Row(i);
    if (row.empty()) continue;
    double sum = 0.0;
    for (const Neighbor& nb : row) sum += nb.distance;
    scores[i] = sum / static_cast<double>(row.size());
  }
  return scores;
}

}  // namespace

std::vector<double> KnnDistanceScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  if (n < 2) return std::vector<double>(n, 0.0);
  const std::size_t k = ClampNeighborhoodSize(k_, n, name().c_str());
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  KnnResultTable table;
  searcher->QueryAllKnn(k, &table, num_threads_);
  return KthDistanceFromTable(table, n);
}

std::vector<double> KnnDistanceScorer::ScoreSubspacePrepared(
    const PreparedDataset& prepared, const Subspace& subspace) const {
  const std::size_t n = prepared.num_objects();
  if (n < 2) return std::vector<double>(n, 0.0);
  const std::size_t k = ClampNeighborhoodSize(k_, n, name().c_str());
  const std::shared_ptr<const KnnResultTable> table =
      prepared.cache().GetKnnTable(subspace, KnnBackend::kBruteForce, k,
                                   num_threads_, /*use_batch_kernel=*/true);
  return KthDistanceFromTable(*table, n);
}

double KnnDistanceScorer::ScoreOutOfSample(
    std::span<const Neighbor> neighbors,
    const TrainedScorerState& state) const {
  (void)state;
  return neighbors.empty() ? 0.0 : neighbors.back().distance;
}

std::vector<double> KnnAverageScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  if (n < 2) return std::vector<double>(n, 0.0);
  const std::size_t k = ClampNeighborhoodSize(k_, n, name().c_str());
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  KnnResultTable table;
  searcher->QueryAllKnn(k, &table, num_threads_);
  return MeanDistanceFromTable(table, n);
}

std::vector<double> KnnAverageScorer::ScoreSubspacePrepared(
    const PreparedDataset& prepared, const Subspace& subspace) const {
  const std::size_t n = prepared.num_objects();
  if (n < 2) return std::vector<double>(n, 0.0);
  const std::size_t k = ClampNeighborhoodSize(k_, n, name().c_str());
  const std::shared_ptr<const KnnResultTable> table =
      prepared.cache().GetKnnTable(subspace, KnnBackend::kBruteForce, k,
                                   num_threads_, /*use_batch_kernel=*/true);
  return MeanDistanceFromTable(*table, n);
}

double KnnAverageScorer::ScoreOutOfSample(
    std::span<const Neighbor> neighbors,
    const TrainedScorerState& state) const {
  (void)state;
  if (neighbors.empty()) return 0.0;
  double sum = 0.0;
  for (const Neighbor& nb : neighbors) sum += nb.distance;
  return sum / static_cast<double>(neighbors.size());
}

}  // namespace hics
