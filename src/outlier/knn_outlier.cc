#include "outlier/knn_outlier.h"

#include <algorithm>

#include "index/neighbor_searcher.h"

namespace hics {

std::vector<double> KnnDistanceScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  std::vector<double> scores(n, 0.0);
  if (n < 2) return scores;
  const std::size_t k = std::min(k_, n - 1);
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  KnnResultTable table;
  searcher->QueryAllKnn(k, &table, num_threads_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = table.Row(i);
    scores[i] = row.empty() ? 0.0 : row.back().distance;
  }
  return scores;
}

std::vector<double> KnnAverageScorer::ScoreSubspace(
    const Dataset& dataset, const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  std::vector<double> scores(n, 0.0);
  if (n < 2) return scores;
  const std::size_t k = std::min(k_, n - 1);
  const auto searcher = MakeBruteForceSearcher(dataset, subspace);
  KnnResultTable table;
  searcher->QueryAllKnn(k, &table, num_threads_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = table.Row(i);
    if (row.empty()) continue;
    double sum = 0.0;
    for (const Neighbor& nb : row) sum += nb.distance;
    scores[i] = sum / static_cast<double>(row.size());
  }
  return scores;
}

}  // namespace hics
