#include "outlier/loci.h"

#include <algorithm>
#include <cmath>

#include "index/neighbor_searcher.h"

namespace hics {

std::vector<double> LociScorer::ScoreSubspace(const Dataset& dataset,
                                              const Subspace& subspace) const {
  const std::size_t n = dataset.num_objects();
  std::vector<double> scores(n, 0.0);
  if (n < 3) return scores;

  const auto searcher = MakeBruteForceSearcher(dataset, subspace);

  // Radius schedule: geometric from the typical nearest-neighbor scale up
  // to the data diameter (bounding-box diagonal), so even a fully isolated
  // object eventually acquires a neighborhood large enough for MDEF.
  double r_min = 0.0;
  {
    const std::size_t probes = std::min<std::size_t>(n, 16);
    for (std::size_t i = 0; i < probes; ++i) {
      const std::size_t id = i * (n / probes);
      const auto nbrs = searcher->QueryKnn(id, 1);
      if (!nbrs.empty()) r_min += nbrs.front().distance;
    }
    r_min = std::max(r_min / static_cast<double>(probes), 1e-9);
  }
  double r_max = 0.0;
  for (std::size_t dim : subspace) {
    const auto& col = dataset.Column(dim);
    const auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    const double extent = *mx - *mn;
    r_max += extent * extent;
  }
  r_max = std::max(std::sqrt(r_max), r_min * 8.0);

  std::vector<double> radii;
  radii.reserve(params_.num_radii);
  const double growth =
      std::pow(r_max / r_min,
               1.0 / static_cast<double>(
                         std::max<std::size_t>(params_.num_radii - 1, 1)));
  double r = r_min;
  for (std::size_t i = 0; i < params_.num_radii; ++i) {
    radii.push_back(r);
    r *= growth;
  }

  // Counting neighborhood sizes: one radius query per (object, radius),
  // through caller-kept buffers so the hot loop stops allocating per
  // query. Exact LOCI is O(num_radii * N^2), like the quadratic LOF it is
  // benchmarked against.
  std::vector<std::size_t> half_count(n);
  std::vector<Neighbor> nbrs;
  for (double radius : radii) {
    // n(p, r/2) for all p.
    for (std::size_t i = 0; i < n; ++i) {
      searcher->QueryRadius(i, radius / 2.0, &nbrs);
      half_count[i] = nbrs.size() + 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      searcher->QueryRadius(i, radius, &nbrs);
      if (nbrs.size() + 1 < params_.min_neighbors) continue;
      // Mean and stddev of n(q, r/2) over the r-neighborhood (incl. self).
      double sum = static_cast<double>(half_count[i]);
      double sum_sq =
          static_cast<double>(half_count[i]) * half_count[i];
      for (const Neighbor& nb : nbrs) {
        const double c = static_cast<double>(half_count[nb.id]);
        sum += c;
        sum_sq += c * c;
      }
      const double m = static_cast<double>(nbrs.size() + 1);
      const double mean = sum / m;
      if (mean <= 0.0) continue;
      const double var = std::max(sum_sq / m - mean * mean, 0.0);
      const double sigma_mdef = std::sqrt(var) / mean;
      const double mdef =
          1.0 - static_cast<double>(half_count[i]) / mean;
      if (sigma_mdef > 0.0) {
        scores[i] = std::max(scores[i], mdef / sigma_mdef);
      }
    }
  }
  return scores;
}

}  // namespace hics
