#ifndef HICS_OUTLIER_UNIVARIATE_H_
#define HICS_OUTLIER_UNIVARIATE_H_

#include <string>
#include <vector>

#include "outlier/outlier_scorer.h"

namespace hics {

/// Trivial (one-dimensional) outlier detection.
///
/// HiCS deliberately targets *non-trivial* outliers -- objects hidden in
/// multi-dimensional correlations -- and the paper notes (§V-B) that its
/// ROC curves on e.g. Ionosphere lose some steepness at low false positive
/// rates because trivially visible outliers are de-emphasized; it suggests
/// a pre-processing step for trivial outliers as a quality improvement.
/// This module provides that step: robust per-attribute deviation scores
/// that can be blended with the subspace ranking (see
/// CombineTrivialAndSubspaceScores).

/// How a single attribute's deviation is measured.
enum class UnivariateMethod {
  /// |x - mean| / stddev. Classic, but mean/stddev are themselves
  /// outlier-sensitive.
  kZScore,
  /// |x - median| / MAD (median absolute deviation, scaled by 1.4826 for
  /// normal consistency). Robust default.
  kRobustZScore,
  /// Distance beyond the [Q1 - 1.5 IQR, Q3 + 1.5 IQR] whiskers in IQR
  /// units; 0 inside the whiskers (Tukey's fences).
  kIqr,
};

/// Scores each object by its strongest one-dimensional deviation:
/// score(x) = max over attributes of the per-attribute deviation. Exactly
/// the outliers HiCS calls "trivial" get high scores here.
class UnivariateScorer : public OutlierScorer {
 public:
  explicit UnivariateScorer(
      UnivariateMethod method = UnivariateMethod::kRobustZScore)
      : method_(method) {}

  std::vector<double> ScoreSubspace(const Dataset& dataset,
                                    const Subspace& subspace) const override;

  std::string name() const override;

  /// The method is the only parameter and name() already encodes it
  /// ("uni-zscore" / "uni-robust" / "uni-iqr").
  std::string cache_key() const override { return name(); }

 private:
  UnivariateMethod method_;
};

/// Deviation scores of a single sample under `method` (exposed for direct
/// use and testing). Returns one score per value, all >= 0.
std::vector<double> UnivariateDeviations(const std::vector<double>& values,
                                         UnivariateMethod method);

/// Blends a trivial-outlier score vector with a subspace-ranking score
/// vector: both are rank-normalized to [0, 1] (so their scales become
/// comparable) and combined as
///   max(weight_trivial * trivial_rank, subspace_rank).
/// With weight_trivial = 1 a full-blown 1-D outlier outranks everything
/// trivial-free; 0 disables the pre-processing.
std::vector<double> CombineTrivialAndSubspaceScores(
    const std::vector<double>& trivial_scores,
    const std::vector<double>& subspace_scores, double weight_trivial = 1.0);

}  // namespace hics

#endif  // HICS_OUTLIER_UNIVARIATE_H_
