// Internal: the canonical partial-sum tails and combines shared by every
// tier. A vector tier runs its main loop in registers, spills the lane
// partials to an array, finishes the remainder through these exact
// helpers, and combines in the exact order below — which is what makes
// scalar and vector results bit-identical by construction. The build
// compiles everything with -ffp-contract=off, so none of these can
// silently turn into FMA in any TU.

#ifndef HICS_SIMD_KERNELS_COMMON_H_
#define HICS_SIMD_KERNELS_COMMON_H_

#include <cstddef>
#include <cstdint>

#include "simd/simd.h"

namespace hics::simd::internal {

/// Tail of the 4-partial-sum squared distance: accumulates dimensions
/// [j, dim) into s[j % 4], continuing the lane assignment of the main
/// loop (which must have consumed a multiple of 4 dimensions).
inline void SquaredDistanceTail4(const double* a, const double* b,
                                 std::size_t j, std::size_t dim, double* s) {
  for (; j < dim; ++j) {
    const double diff = a[j] - b[j];
    s[j % 4] += diff * diff;
  }
}

/// Canonical combine of the 4 distance partials.
inline double Combine4(const double* s) {
  return (s[0] + s[2]) + (s[1] + s[3]);
}

/// Tail of the 8-partial-sum reduction: values [j, n) into s[j % 8].
inline void SumTail8(const double* values, std::size_t j, std::size_t n,
                     double* s) {
  for (; j < n; ++j) s[j % 8] += values[j];
}

/// Tail of the 8-partial-sum squared-deviation reduction.
inline void SumSqDevTail8(const double* values, std::size_t j, std::size_t n,
                          double mean, double* s) {
  for (; j < n; ++j) {
    const double d = values[j] - mean;
    s[j % 8] += d * d;
  }
}

/// Canonical combine of the 8 moment partials. Matches the natural
/// 512->256->128 vector reduction: lanes fold as (l, l+4), then the
/// 4-partial combine.
inline double Combine8(const double* s) {
  const double t0 = s[0] + s[4];
  const double t1 = s[1] + s[5];
  const double t2 = s[2] + s[6];
  const double t3 = s[3] + s[7];
  return (t0 + t2) + (t1 + t3);
}

/// Tail of the bin-index mapping: elements [j, n) through the canonical
/// single-element clamp (bin_index is purely elementwise, so the tail is
/// just the reference mapping itself).
inline void BinIndexTail(const double* values, std::size_t j, std::size_t n,
                         double lo, double scale, double max_bin,
                         std::uint32_t* out) {
  for (; j < n; ++j) out[j] = BinIndexOne(values[j], lo, scale, max_bin);
}

}  // namespace hics::simd::internal

#endif  // HICS_SIMD_KERNELS_COMMON_H_
