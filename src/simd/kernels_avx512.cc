// AVX-512 tier (F/BW/DQ/VL baseline). CANONICAL kernels keep the scalar
// tier's partial-sum lanes: the exact distance stays on 4 ymm lanes (the
// canonical decomposition is 4-wide; running it 8-wide would change the
// result), the moments run one zmm accumulator whose 8 lanes *are* the
// canonical 8 partials, and compaction uses the native compress-store —
// which preserves ascending order exactly like the scalar cursor loop.
// SCREENING kernels run full zmm width with FMA.

#ifdef HICS_SIMD_COMPILED_AVX512

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"
#include "simd/kernels_common.h"

namespace hics::simd::internal {
namespace {

double SquaredDistanceAvx512(const double* a, const double* b,
                             std::size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  SquaredDistanceTail4(a, b, j, dim, s);
  return Combine4(s);
}

double SquaredDistanceBoundedAvx512(const double* a, const double* b,
                                    std::size_t dim, double bound) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= dim; j += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d0, d0));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j + 4), _mm256_loadu_pd(b + j + 4));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d1, d1));
    double s[4];
    _mm256_storeu_pd(s, acc);
    const double total = Combine4(s);
    if (total > bound) return total;
  }
  for (; j + 4 <= dim; j += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  SquaredDistanceTail4(a, b, j, dim, s);
  return Combine4(s);
}

void ScreenRowF64Avx512(const double* soa, std::size_t stride,
                        std::size_t dim, std::size_t i, std::size_t j0,
                        std::size_t w, double ni, const double* norms,
                        double* d2) {
  std::size_t t = 0;
  const __m512d vni = _mm512_set1_pd(ni);
  for (; t + 16 <= w; t += 16) {
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const double* base = soa + d * stride;
      const __m512d xi = _mm512_set1_pd(base[i]);
      const double* col = base + j0 + t;
      acc0 = _mm512_fmadd_pd(xi, _mm512_loadu_pd(col), acc0);
      acc1 = _mm512_fmadd_pd(xi, _mm512_loadu_pd(col + 8), acc1);
    }
    const __m512d r0 =
        _mm512_sub_pd(_mm512_add_pd(vni, _mm512_loadu_pd(norms + t)),
                      _mm512_add_pd(acc0, acc0));
    const __m512d r1 =
        _mm512_sub_pd(_mm512_add_pd(vni, _mm512_loadu_pd(norms + t + 8)),
                      _mm512_add_pd(acc1, acc1));
    _mm512_storeu_pd(d2 + t, r0);
    _mm512_storeu_pd(d2 + t + 8, r1);
  }
  for (; t + 8 <= w; t += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const double* base = soa + d * stride;
      acc = _mm512_fmadd_pd(_mm512_set1_pd(base[i]),
                            _mm512_loadu_pd(base + j0 + t), acc);
    }
    _mm512_storeu_pd(
        d2 + t, _mm512_sub_pd(_mm512_add_pd(vni, _mm512_loadu_pd(norms + t)),
                              _mm512_add_pd(acc, acc)));
  }
  for (; t < w; ++t) {
    double dot = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      dot += soa[d * stride + i] * soa[d * stride + j0 + t];
    }
    d2[t] = ni + norms[t] - 2.0 * dot;
  }
}

void ScreenRowF32Avx512(const float* soa, std::size_t stride, std::size_t dim,
                        std::size_t i, std::size_t j0, std::size_t w,
                        float ni, const float* norms, double* d2) {
  std::size_t t = 0;
  const __m512 vni = _mm512_set1_ps(ni);
  for (; t + 16 <= w; t += 16) {
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      const float* base = soa + d * stride;
      acc = _mm512_fmadd_ps(_mm512_set1_ps(base[i]),
                            _mm512_loadu_ps(base + j0 + t), acc);
    }
    const __m512 r =
        _mm512_sub_ps(_mm512_add_ps(vni, _mm512_loadu_ps(norms + t)),
                      _mm512_add_ps(acc, acc));
    _mm512_storeu_pd(d2 + t,
                     _mm512_cvtps_pd(_mm512_castps512_ps256(r)));
    _mm512_storeu_pd(d2 + t + 8,
                     _mm512_cvtps_pd(_mm512_extractf32x8_ps(r, 1)));
  }
  for (; t < w; ++t) {
    float dot = 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      dot += soa[d * stride + i] * soa[d * stride + j0 + t];
    }
    d2[t] = static_cast<double>(ni + norms[t] - 2.0f * dot);
  }
}

std::size_t CompactSelectedAvx512(const double* column,
                                  const std::uint32_t* stamps, std::size_t n,
                                  std::uint32_t target, double* out) {
  const __m256i vtarget = _mm256_set1_epi32(static_cast<int>(target));
  std::size_t k = 0;
  std::size_t id = 0;
  for (; id + 8 <= n; id += 8) {
    const __m256i st = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(stamps + id));
    const __mmask8 m = _mm256_cmpeq_epu32_mask(st, vtarget);
    _mm512_mask_compressstoreu_pd(out + k, m, _mm512_loadu_pd(column + id));
    k += static_cast<std::size_t>(__builtin_popcount(m));
  }
  for (; id < n; ++id) {
    out[k] = column[id];
    k += static_cast<std::size_t>(stamps[id] == target);
  }
  return k;
}

std::size_t CompactSelectedSortedAvx512(const double* sorted_values,
                                        const std::size_t* order,
                                        const std::uint32_t* stamps,
                                        std::size_t n, std::uint32_t target,
                                        double* out) {
  const __m256i vtarget = _mm256_set1_epi32(static_cast<int>(target));
  std::size_t k = 0;
  std::size_t pos = 0;
  for (; pos + 8 <= n; pos += 8) {
    const __m512i idx = _mm512_loadu_si512(
        reinterpret_cast<const void*>(order + pos));
    const __m256i st =
        _mm512_i64gather_epi32(idx, stamps, sizeof(std::uint32_t));
    const __mmask8 m = _mm256_cmpeq_epu32_mask(st, vtarget);
    _mm512_mask_compressstoreu_pd(out + k, m,
                                  _mm512_loadu_pd(sorted_values + pos));
    k += static_cast<std::size_t>(__builtin_popcount(m));
  }
  for (; pos < n; ++pos) {
    out[k] = sorted_values[pos];
    k += static_cast<std::size_t>(stamps[order[pos]] == target);
  }
  return k;
}

double SumAvx512(const double* values, std::size_t n) {
  // One zmm accumulator: lane l is canonical partial s[l] directly.
  __m512d acc = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(values + j));
  }
  double s[8];
  _mm512_storeu_pd(s, acc);
  SumTail8(values, j, n, s);
  return Combine8(s);
}

double SumSqDevAvx512(const double* values, std::size_t n, double mean) {
  const __m512d vmean = _mm512_set1_pd(mean);
  __m512d acc = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d d = _mm512_sub_pd(_mm512_loadu_pd(values + j), vmean);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  double s[8];
  _mm512_storeu_pd(s, acc);
  SumSqDevTail8(values, j, n, mean, s);
  return Combine8(s);
}

void BinIndexAvx512(const double* values, std::size_t n, double lo,
                    double scale, double max_bin, std::uint32_t* out) {
  // Elementwise, 8 doubles -> 8 uint32 per step; same NaN-to-bin-0 clamp
  // semantics as the AVX2 tier (vmaxpd/vminpd return the second operand
  // when the first is NaN).
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vscale = _mm512_set1_pd(scale);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vmax = _mm512_set1_pd(max_bin);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512d t =
        _mm512_mul_pd(_mm512_sub_pd(_mm512_loadu_pd(values + j), vlo), vscale);
    t = _mm512_max_pd(t, vzero);
    t = _mm512_min_pd(t, vmax);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        _mm512_cvttpd_epi32(t));
  }
  BinIndexTail(values, j, n, lo, scale, max_bin, out);
}

}  // namespace

const SimdKernels& Avx512Kernels() {
  static const SimdKernels kernels = {
      SquaredDistanceAvx512,
      SquaredDistanceBoundedAvx512,
      ScreenRowF64Avx512,
      ScreenRowF32Avx512,
      CompactSelectedAvx512,
      CompactSelectedSortedAvx512,
      SumAvx512,
      SumSqDevAvx512,
      BinIndexAvx512,
      "avx512",
  };
  return kernels;
}

}  // namespace hics::simd::internal

#endif  // HICS_SIMD_COMPILED_AVX512
