#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "simd/kernels.h"

namespace hics::simd {
namespace {

SimdFeatures DetectFeatures() {
  SimdFeatures f;
#if defined(__GNUC__) || defined(__clang__)
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512dq = __builtin_cpu_supports("avx512dq");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

SimdTier ComputeDetectedTier() {
  const SimdFeatures& f = DetectedFeatures();
#ifdef HICS_SIMD_COMPILED_AVX512
  if (f.avx512f && f.avx512bw && f.avx512dq && f.avx512vl && f.avx2 &&
      f.fma) {
    return SimdTier::kAvx512;
  }
#endif
#ifdef HICS_SIMD_COMPILED_AVX2
  if (f.avx2 && f.fma) return SimdTier::kAvx2;
#endif
  return SimdTier::kScalar;
}

const SimdKernels& TableForClamped(SimdTier tier) {
  // `tier` must already be <= DetectedTier(), so the compiled guards and
  // the cpuid check both hold for any table we return.
  switch (tier) {
    case SimdTier::kAvx512:
#ifdef HICS_SIMD_COMPILED_AVX512
      return internal::Avx512Kernels();
#else
      break;
#endif
    case SimdTier::kAvx2:
#ifdef HICS_SIMD_COMPILED_AVX2
      return internal::Avx2Kernels();
#else
      break;
#endif
    case SimdTier::kScalar:
      break;
  }
  return internal::ScalarKernels();
}

SimdTier Clamp(SimdTier tier) {
  const SimdTier best = DetectedTier();
  return static_cast<int>(tier) > static_cast<int>(best) ? best : tier;
}

/// Initial tier: DetectedTier() clamped by HICS_SIMD (read once, at first
/// use). An unparseable value is reported once and ignored.
SimdTier InitialTier() {
  SimdTier tier = DetectedTier();
  if (const char* env = std::getenv("HICS_SIMD")) {
    SimdTier requested;
    if (ParseSimdTier(env, &requested)) {
      tier = Clamp(requested);
    } else {
      std::fprintf(stderr,
                   "hics: ignoring unrecognized HICS_SIMD=\"%s\" "
                   "(expected scalar, avx2, avx512, or auto)\n",
                   env);
    }
  }
  return tier;
}

std::atomic<const SimdKernels*>& ActiveTable() {
  static std::atomic<const SimdKernels*> table{
      &TableForClamped(InitialTier())};
  return table;
}

std::atomic<int>& ActiveTierSlot() {
  static std::atomic<int> tier{static_cast<int>(InitialTier())};
  return tier;
}

}  // namespace

const SimdFeatures& DetectedFeatures() {
  static const SimdFeatures features = DetectFeatures();
  return features;
}

SimdTier DetectedTier() {
  static const SimdTier tier = ComputeDetectedTier();
  return tier;
}

SimdTier ActiveTier() {
  return static_cast<SimdTier>(
      ActiveTierSlot().load(std::memory_order_acquire));
}

const SimdKernels& ActiveKernels() {
  return *ActiveTable().load(std::memory_order_acquire);
}

const SimdKernels& KernelsForTier(SimdTier tier) {
  return TableForClamped(Clamp(tier));
}

SimdTier SetSimdTier(SimdTier tier) {
  const SimdTier applied = Clamp(tier);
  // Table first, tier second: a racing reader may briefly pair the old
  // tier label with the new table, but never dispatches a kernel the
  // machine cannot run.
  ActiveTable().store(&TableForClamped(applied), std::memory_order_release);
  ActiveTierSlot().store(static_cast<int>(applied),
                         std::memory_order_release);
  return applied;
}

bool ParseSimdTier(const std::string& name, SimdTier* out) {
  if (name == "scalar") {
    *out = SimdTier::kScalar;
  } else if (name == "avx2") {
    *out = SimdTier::kAvx2;
  } else if (name == "avx512") {
    *out = SimdTier::kAvx512;
  } else if (name == "auto") {
    *out = DetectedTier();
  } else {
    return false;
  }
  return true;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

ScopedSimdTier::ScopedSimdTier(SimdTier tier)
    : previous_(ActiveTier()), applied_(SetSimdTier(tier)) {}

ScopedSimdTier::~ScopedSimdTier() { SetSimdTier(previous_); }

}  // namespace hics::simd
