// Scalar tier: the canonical reference implementations. Every vector tier
// must reproduce the CANONICAL kernels here bit for bit (same partial-sum
// lanes, same combine order — see kernels_common.h); the SCREENING kernels
// only need to stay within the callers' slack margins.

#include <array>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"
#include "simd/kernels_common.h"

namespace hics::simd::internal {
namespace {

double SquaredDistanceScalar(const double* a, const double* b,
                             std::size_t dim) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    const double d0 = a[j] - b[j];
    const double d1 = a[j + 1] - b[j + 1];
    const double d2 = a[j + 2] - b[j + 2];
    const double d3 = a[j + 3] - b[j + 3];
    s[0] += d0 * d0;
    s[1] += d1 * d1;
    s[2] += d2 * d2;
    s[3] += d3 * d3;
  }
  SquaredDistanceTail4(a, b, j, dim, s);
  return Combine4(s);
}

double SquaredDistanceBoundedScalar(const double* a, const double* b,
                                    std::size_t dim, double bound) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t j = 0;
  // Two unrolled 4-wide steps between bound checks: the same every-8
  // cadence the pre-SIMD kernel used, now on four independent dependency
  // chains so the common below-bound path is throughput- not
  // latency-limited.
  for (; j + 8 <= dim; j += 8) {
    const double d0 = a[j] - b[j];
    const double d1 = a[j + 1] - b[j + 1];
    const double d2 = a[j + 2] - b[j + 2];
    const double d3 = a[j + 3] - b[j + 3];
    s[0] += d0 * d0;
    s[1] += d1 * d1;
    s[2] += d2 * d2;
    s[3] += d3 * d3;
    const double d4 = a[j + 4] - b[j + 4];
    const double d5 = a[j + 5] - b[j + 5];
    const double d6 = a[j + 6] - b[j + 6];
    const double d7 = a[j + 7] - b[j + 7];
    s[0] += d4 * d4;
    s[1] += d5 * d5;
    s[2] += d6 * d6;
    s[3] += d7 * d7;
    if (Combine4(s) > bound) return Combine4(s);
  }
  for (; j + 4 <= dim; j += 4) {
    const double d0 = a[j] - b[j];
    const double d1 = a[j + 1] - b[j + 1];
    const double d2 = a[j + 2] - b[j + 2];
    const double d3 = a[j + 3] - b[j + 3];
    s[0] += d0 * d0;
    s[1] += d1 * d1;
    s[2] += d2 * d2;
    s[3] += d3 * d3;
  }
  SquaredDistanceTail4(a, b, j, dim, s);
  return Combine4(s);
}

void ScreenRowF64Scalar(const double* soa, std::size_t stride,
                        std::size_t dim, std::size_t i, std::size_t j0,
                        std::size_t w, double ni, const double* norms,
                        double* d2) {
  std::array<double, kMaxScreenWidth> dot{};
  for (std::size_t d = 0; d < dim; ++d) {
    const double xi = soa[d * stride + i];
    const double* col = soa + d * stride + j0;
    for (std::size_t t = 0; t < w; ++t) dot[t] += xi * col[t];
  }
  for (std::size_t t = 0; t < w; ++t) {
    d2[t] = ni + norms[t] - 2.0 * dot[t];
  }
}

void ScreenRowF32Scalar(const float* soa, std::size_t stride, std::size_t dim,
                        std::size_t i, std::size_t j0, std::size_t w,
                        float ni, const float* norms, double* d2) {
  std::array<float, kMaxScreenWidth> dot{};
  for (std::size_t d = 0; d < dim; ++d) {
    const float xi = soa[d * stride + i];
    const float* col = soa + d * stride + j0;
    for (std::size_t t = 0; t < w; ++t) dot[t] += xi * col[t];
  }
  for (std::size_t t = 0; t < w; ++t) {
    d2[t] = static_cast<double>(ni + norms[t] - 2.0f * dot[t]);
  }
}

std::size_t CompactSelectedScalar(const double* column,
                                  const std::uint32_t* stamps, std::size_t n,
                                  std::uint32_t target, double* out) {
  // Branchless compaction: every position writes, only hits advance the
  // cursor — the hit rate is the slice-selection density, which the
  // branch predictor cannot learn.
  std::size_t k = 0;
  for (std::size_t id = 0; id < n; ++id) {
    out[k] = column[id];
    k += static_cast<std::size_t>(stamps[id] == target);
  }
  return k;
}

std::size_t CompactSelectedSortedScalar(const double* sorted_values,
                                        const std::size_t* order,
                                        const std::uint32_t* stamps,
                                        std::size_t n, std::uint32_t target,
                                        double* out) {
  std::size_t k = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    out[k] = sorted_values[pos];
    k += static_cast<std::size_t>(stamps[order[pos]] == target);
  }
  return k;
}

double SumScalar(const double* values, std::size_t n) {
  double s[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    s[0] += values[j];
    s[1] += values[j + 1];
    s[2] += values[j + 2];
    s[3] += values[j + 3];
    s[4] += values[j + 4];
    s[5] += values[j + 5];
    s[6] += values[j + 6];
    s[7] += values[j + 7];
  }
  SumTail8(values, j, n, s);
  return Combine8(s);
}

double SumSqDevScalar(const double* values, std::size_t n, double mean) {
  double s[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const double d0 = values[j] - mean;
    const double d1 = values[j + 1] - mean;
    const double d2 = values[j + 2] - mean;
    const double d3 = values[j + 3] - mean;
    const double d4 = values[j + 4] - mean;
    const double d5 = values[j + 5] - mean;
    const double d6 = values[j + 6] - mean;
    const double d7 = values[j + 7] - mean;
    s[0] += d0 * d0;
    s[1] += d1 * d1;
    s[2] += d2 * d2;
    s[3] += d3 * d3;
    s[4] += d4 * d4;
    s[5] += d5 * d5;
    s[6] += d6 * d6;
    s[7] += d7 * d7;
  }
  SumSqDevTail8(values, j, n, mean, s);
  return Combine8(s);
}

void BinIndexScalar(const double* values, std::size_t n, double lo,
                    double scale, double max_bin, std::uint32_t* out) {
  BinIndexTail(values, 0, n, lo, scale, max_bin, out);
}

}  // namespace

const SimdKernels& ScalarKernels() {
  static const SimdKernels kernels = {
      SquaredDistanceScalar,
      SquaredDistanceBoundedScalar,
      ScreenRowF64Scalar,
      ScreenRowF32Scalar,
      CompactSelectedScalar,
      CompactSelectedSortedScalar,
      SumScalar,
      SumSqDevScalar,
      BinIndexScalar,
      "scalar",
  };
  return kernels;
}

}  // namespace hics::simd::internal
