// Internal: per-tier kernel tables. Each TU compiled with the matching
// -m flags exposes exactly one accessor; simd.cc wires them into the
// dispatch. Tables for tiers this binary was not compiled with are absent
// (guarded by the HICS_SIMD_COMPILED_* macros from CMake).

#ifndef HICS_SIMD_KERNELS_H_
#define HICS_SIMD_KERNELS_H_

#include "simd/simd.h"

namespace hics::simd::internal {

const SimdKernels& ScalarKernels();
#ifdef HICS_SIMD_COMPILED_AVX2
const SimdKernels& Avx2Kernels();
#endif
#ifdef HICS_SIMD_COMPILED_AVX512
const SimdKernels& Avx512Kernels();
#endif

}  // namespace hics::simd::internal

#endif  // HICS_SIMD_KERNELS_H_
