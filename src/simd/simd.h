// Explicit SIMD layer: runtime CPU dispatch over scalar / AVX2 / AVX-512
// implementations of the two hot kernel families (DESIGN.md §5g):
//
//   * the batched-kNN distance kernels — the exact 4-partial-sum squared
//     distance every result-bearing path shares, and the Gram-screening
//     tile rows (f64 and f32) that only ever *prune* pairs,
//   * the rank-space contrast kernels — stamp-filtered compaction of a
//     slice selection (object-id order for moment tests, sorted-attribute
//     order for rank tests) and the canonical 8-partial-sum moments.
//
// Bit-identity contract. Kernels come in two classes:
//
//   CANONICAL — squared_distance(_bounded), mean, sum_sq_dev, both
//   compaction kernels, and the grid bin_index kernel define *the*
//   result. Every tier computes the same partial-sum decomposition in the
//   same combine order (see kernels_scalar.cc for the reference), so
//   outputs are bit-identical across scalar/AVX2/AVX-512 and across
//   machines. None of them may use FMA (the build pins -ffp-contract=off
//   so inlined scalar code cannot silently contract either).
//
//   SCREENING — screen_row_f64 / screen_row_f32 produce approximations
//   whose error the caller covers with a slack margin before an exact
//   recompute; they are free to reassociate and fuse, so each tier runs
//   them at full hardware width.
//
// The tier is detected once (cpuid) and can be forced down for testing via
// the HICS_SIMD environment variable ("scalar", "avx2", "avx512") or
// SetSimdTier / ScopedSimdTier (HicsParams::simd_tier routes here).
// Requests above the detected/compiled capability clamp down, never up.

#ifndef HICS_SIMD_SIMD_H_
#define HICS_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace hics::simd {

/// Instruction-set tiers, ordered by capability. kAvx2 requires AVX2+FMA;
/// kAvx512 requires AVX-512 F/BW/DQ/VL (the Skylake-X baseline).
enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// CPU features relevant to tier selection, as reported by cpuid. Recorded
/// into BENCH_*.json so perf trajectories across machines are comparable.
struct SimdFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512dq = false;
  bool avx512vl = false;
};

/// Function table of the dispatched kernels. One immutable instance per
/// tier; ActiveKernels() returns the selected one. All pointers are always
/// non-null (lower tiers fill in for kernels a tier does not specialize).
struct SimdKernels {
  /// CANONICAL. Squared Euclidean distance over `dim` dimensions as four
  /// independent partial sums (lane l accumulates dimensions j % 4 == l),
  /// combined as (s0+s2) + (s1+s3). No FMA.
  double (*squared_distance)(const double* a, const double* b,
                             std::size_t dim);

  /// CANONICAL. Same accumulation, early exit once the partial total
  /// exceeds `bound` (checked every 8 dimensions). A result <= bound is
  /// bit-identical to squared_distance; above the bound it is only a
  /// certificate of exceedance.
  double (*squared_distance_bounded)(const double* a, const double* b,
                                     std::size_t dim, double bound);

  /// SCREENING. One row of the Gram-decomposition tile:
  ///   d2[t] = ni + norms[t] - 2 * <x_i, x_{j0+t}>   for t in [0, w)
  /// with the dot products accumulated dimension-major over the SoA
  /// columns (`soa` has stride `stride` per dimension; x_i is column
  /// element i, the tile columns start at j0). Approximate: callers must
  /// cover the error with a slack margin.
  void (*screen_row_f64)(const double* soa, std::size_t stride,
                         std::size_t dim, std::size_t i, std::size_t j0,
                         std::size_t w, double ni, const double* norms,
                         double* d2);

  /// SCREENING. Single-precision variant over a float32 SoA copy; `ni`
  /// and `norms` are the float32 norms. Results are converted to double.
  /// Roughly twice the lanes of screen_row_f64; needs the wider float32
  /// slack (see BruteForceSearcher::ScreeningSlack).
  void (*screen_row_f32)(const float* soa, std::size_t stride,
                         std::size_t dim, std::size_t i, std::size_t j0,
                         std::size_t w, float ni, const float* norms,
                         double* d2);

  /// CANONICAL. Object-id-order compaction of a slice selection: writes
  /// column[id] for every id in [0, n) with stamps[id] == target to
  /// out[0..k) (ascending id) and returns k. `out` must have room for
  /// n + kCompactPad elements; slots past k are scratch garbage.
  std::size_t (*compact_selected)(const double* column,
                                  const std::uint32_t* stamps, std::size_t n,
                                  std::uint32_t target, double* out);

  /// CANONICAL. Sorted-attribute-order compaction: position pos emits
  /// sorted_values[pos] iff stamps[order[pos]] == target, so the output is
  /// the selected sample already sorted ascending. Same out-buffer
  /// contract as compact_selected.
  std::size_t (*compact_selected_sorted)(const double* sorted_values,
                                         const std::size_t* order,
                                         const std::uint32_t* stamps,
                                         std::size_t n, std::uint32_t target,
                                         double* out);

  /// CANONICAL. Sum of `values` as eight independent partial sums (lane
  /// l accumulates j % 8 == l), combined pairwise:
  ///   ((s0+s4) + (s2+s6)) + ((s1+s5) + (s3+s7)).
  double (*sum)(const double* values, std::size_t n);

  /// CANONICAL. Sum of (values[j] - mean)^2 in the same 8-partial-sum
  /// scheme as sum(). No FMA.
  double (*sum_sq_dev)(const double* values, std::size_t n, double mean);

  /// CANONICAL. Equi-width grid bin index per element:
  ///   out[i] = uint32(clamp((values[i] - lo) * scale, 0.0, max_bin))
  /// with the clamp performed entirely in the double domain *before* the
  /// truncating conversion, in the exact order of BinIndexOne() below —
  /// so NaN inputs and everything below the range land in bin 0, values
  /// past the top edge cap at max_bin, and no tier ever performs an
  /// out-of-range double->int conversion (UB in scalar code, saturation
  /// on cvttpd). Purely elementwise: every tier applies the same IEEE
  /// sub/mul/max/min/truncate per lane, so results are bit-identical
  /// across tiers by construction. `max_bin` is bins_per_dim - 1 as a
  /// double and must be < 2^31.
  void (*bin_index)(const double* values, std::size_t n, double lo,
                    double scale, double max_bin, std::uint32_t* out);

  /// Tier this table implements ("scalar", "avx2", "avx512").
  const char* name;
};

/// The canonical single-element bin mapping every bin_index tier (and any
/// scalar caller that must agree with it, e.g. out-of-sample grid
/// scoring) implements. The two-sided clamp mirrors the vector tiers'
/// max_pd(t, 0) / min_pd(t, max_bin) semantics: maxpd returns its second
/// operand when the first is NaN, so `t > 0.0 ? t : 0.0` (false for NaN
/// and -0.0) is the exact scalar equivalent.
inline std::uint32_t BinIndexOne(double v, double lo, double scale,
                                 double max_bin) {
  double t = (v - lo) * scale;
  t = t > 0.0 ? t : 0.0;
  t = t < max_bin ? t : max_bin;
  return static_cast<std::uint32_t>(t);
}

/// Extra writable slots the compaction kernels may touch past the last
/// selected element (full-width vector stores near the output cursor).
inline constexpr std::size_t kCompactPad = 8;

/// Maximum `w` the screening-row kernels accept (the distance tile edge).
inline constexpr std::size_t kMaxScreenWidth = 128;

/// Features of the machine we are running on (cpuid, cached).
const SimdFeatures& DetectedFeatures();

/// Best tier this binary can run here: min(compiled support, cpuid).
SimdTier DetectedTier();

/// The tier in effect: DetectedTier() clamped by the HICS_SIMD environment
/// variable (read once) and any SetSimdTier override.
SimdTier ActiveTier();

/// Kernel table of ActiveTier(). Cheap (one atomic load); hot loops should
/// still hoist the reference out of per-element code.
const SimdKernels& ActiveKernels();

/// Kernel table of a specific tier, clamped to DetectedTier(); lets tests
/// compare tiers directly without flipping the global override.
const SimdKernels& KernelsForTier(SimdTier tier);

/// Forces the active tier (clamped to DetectedTier(); requesting an
/// unavailable tier selects the best available below it). Returns the tier
/// actually applied. Takes effect for subsequent ActiveKernels() calls
/// process-wide; intended for tests and benchmarks, not concurrent mixed
/// use.
SimdTier SetSimdTier(SimdTier tier);

/// Parses "scalar" / "avx2" / "avx512" (and "auto" -> DetectedTier());
/// returns false on anything else.
bool ParseSimdTier(const std::string& name, SimdTier* out);

const char* SimdTierName(SimdTier tier);

/// RAII tier override: applies `tier` (clamped) on construction, restores
/// the previous active tier on destruction.
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier);
  ~ScopedSimdTier();
  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

  /// The tier actually in effect inside the scope.
  SimdTier applied() const { return applied_; }

 private:
  SimdTier previous_;
  SimdTier applied_;
};

}  // namespace hics::simd

#endif  // HICS_SIMD_SIMD_H_
