// AVX2 (+FMA) tier. CANONICAL kernels run the exact partial-sum lanes of
// kernels_scalar.cc in ymm registers (a 4-double vector *is* the four
// distance partials; two ymm accumulators are the eight moment partials),
// spill to an array, and finish through the shared scalar tails — so the
// results are bit-identical to the scalar tier by construction. No FMA in
// canonical kernels (and the global -ffp-contract=off keeps the compiler
// from fusing behind our back); the SCREENING kernels fuse freely.
//
// Compaction has no compress instruction on AVX2; it is emulated with a
// per-mask shuffle table driving vpermd over the 4 candidate doubles.

#ifdef HICS_SIMD_COMPILED_AVX2

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"
#include "simd/kernels_common.h"

namespace hics::simd::internal {
namespace {

double SquaredDistanceAvx2(const double* a, const double* b,
                           std::size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  SquaredDistanceTail4(a, b, j, dim, s);
  return Combine4(s);
}

double SquaredDistanceBoundedAvx2(const double* a, const double* b,
                                  std::size_t dim, double bound) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  // Same every-8 bound cadence as the scalar tier; a result that never
  // exceeded the bound is the full canonical accumulation.
  for (; j + 8 <= dim; j += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d0, d0));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j + 4), _mm256_loadu_pd(b + j + 4));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d1, d1));
    double s[4];
    _mm256_storeu_pd(s, acc);
    const double total = Combine4(s);
    if (total > bound) return total;
  }
  for (; j + 4 <= dim; j += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  SquaredDistanceTail4(a, b, j, dim, s);
  return Combine4(s);
}

void ScreenRowF64Avx2(const double* soa, std::size_t stride, std::size_t dim,
                      std::size_t i, std::size_t j0, std::size_t w, double ni,
                      const double* norms, double* d2) {
  std::size_t t = 0;
  const __m256d vni = _mm256_set1_pd(ni);
  for (; t + 8 <= w; t += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const double* base = soa + d * stride;
      const __m256d xi = _mm256_broadcast_sd(base + i);
      const double* col = base + j0 + t;
      acc0 = _mm256_fmadd_pd(xi, _mm256_loadu_pd(col), acc0);
      acc1 = _mm256_fmadd_pd(xi, _mm256_loadu_pd(col + 4), acc1);
    }
    const __m256d r0 =
        _mm256_sub_pd(_mm256_add_pd(vni, _mm256_loadu_pd(norms + t)),
                      _mm256_add_pd(acc0, acc0));
    const __m256d r1 =
        _mm256_sub_pd(_mm256_add_pd(vni, _mm256_loadu_pd(norms + t + 4)),
                      _mm256_add_pd(acc1, acc1));
    _mm256_storeu_pd(d2 + t, r0);
    _mm256_storeu_pd(d2 + t + 4, r1);
  }
  for (; t < w; ++t) {
    double dot = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      dot += soa[d * stride + i] * soa[d * stride + j0 + t];
    }
    d2[t] = ni + norms[t] - 2.0 * dot;
  }
}

void ScreenRowF32Avx2(const float* soa, std::size_t stride, std::size_t dim,
                      std::size_t i, std::size_t j0, std::size_t w, float ni,
                      const float* norms, double* d2) {
  std::size_t t = 0;
  const __m256 vni = _mm256_set1_ps(ni);
  for (; t + 8 <= w; t += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      const float* base = soa + d * stride;
      acc = _mm256_fmadd_ps(_mm256_broadcast_ss(base + i),
                            _mm256_loadu_ps(base + j0 + t), acc);
    }
    const __m256 r =
        _mm256_sub_ps(_mm256_add_ps(vni, _mm256_loadu_ps(norms + t)),
                      _mm256_add_ps(acc, acc));
    _mm256_storeu_pd(d2 + t, _mm256_cvtps_pd(_mm256_castps256_ps128(r)));
    _mm256_storeu_pd(d2 + t + 4,
                     _mm256_cvtps_pd(_mm256_extractf128_ps(r, 1)));
  }
  for (; t < w; ++t) {
    float dot = 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      dot += soa[d * stride + i] * soa[d * stride + j0 + t];
    }
    d2[t] = static_cast<double>(ni + norms[t] - 2.0f * dot);
  }
}

/// vpermd control words packing the doubles selected by a 4-bit stamp mask
/// to the vector front: entry m lists the selected doubles' int32 halves
/// (2e, 2e+1) in ascending e, padded with zeros (the padding lanes are
/// overwritten by later stores or ignored past the final count).
alignas(32) constexpr std::int32_t kCompactLut[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},  // 0000
    {0, 1, 0, 0, 0, 0, 0, 0},  // 0001 -> e0
    {2, 3, 0, 0, 0, 0, 0, 0},  // 0010 -> e1
    {0, 1, 2, 3, 0, 0, 0, 0},  // 0011 -> e0 e1
    {4, 5, 0, 0, 0, 0, 0, 0},  // 0100 -> e2
    {0, 1, 4, 5, 0, 0, 0, 0},  // 0101 -> e0 e2
    {2, 3, 4, 5, 0, 0, 0, 0},  // 0110 -> e1 e2
    {0, 1, 2, 3, 4, 5, 0, 0},  // 0111 -> e0 e1 e2
    {6, 7, 0, 0, 0, 0, 0, 0},  // 1000 -> e3
    {0, 1, 6, 7, 0, 0, 0, 0},  // 1001 -> e0 e3
    {2, 3, 6, 7, 0, 0, 0, 0},  // 1010 -> e1 e3
    {0, 1, 2, 3, 6, 7, 0, 0},  // 1011 -> e0 e1 e3
    {4, 5, 6, 7, 0, 0, 0, 0},  // 1100 -> e2 e3
    {0, 1, 4, 5, 6, 7, 0, 0},  // 1101 -> e0 e2 e3
    {2, 3, 4, 5, 6, 7, 0, 0},  // 1110 -> e1 e2 e3
    {0, 1, 2, 3, 4, 5, 6, 7},  // 1111 -> e0 e1 e2 e3
};

inline std::size_t CompactStep(__m256d values, int mask, double* out,
                               std::size_t k) {
  const __m256i perm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompactLut[mask]));
  const __m256d packed = _mm256_castsi256_pd(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(values), perm));
  _mm256_storeu_pd(out + k, packed);  // out has kCompactPad slots of slack
  return k + static_cast<std::size_t>(__builtin_popcount(
                 static_cast<unsigned>(mask)));
}

std::size_t CompactSelectedAvx2(const double* column,
                                const std::uint32_t* stamps, std::size_t n,
                                std::uint32_t target, double* out) {
  const __m128i vtarget = _mm_set1_epi32(static_cast<int>(target));
  std::size_t k = 0;
  std::size_t id = 0;
  for (; id + 4 <= n; id += 4) {
    const __m128i st = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(stamps + id));
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(st, vtarget)));
    k = CompactStep(_mm256_loadu_pd(column + id), mask, out, k);
  }
  for (; id < n; ++id) {
    out[k] = column[id];
    k += static_cast<std::size_t>(stamps[id] == target);
  }
  return k;
}

std::size_t CompactSelectedSortedAvx2(const double* sorted_values,
                                      const std::size_t* order,
                                      const std::uint32_t* stamps,
                                      std::size_t n, std::uint32_t target,
                                      double* out) {
  const __m128i vtarget = _mm_set1_epi32(static_cast<int>(target));
  std::size_t k = 0;
  std::size_t pos = 0;
  for (; pos + 4 <= n; pos += 4) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(order + pos));
    const __m128i st = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(stamps), idx, sizeof(std::uint32_t));
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(st, vtarget)));
    k = CompactStep(_mm256_loadu_pd(sorted_values + pos), mask, out, k);
  }
  for (; pos < n; ++pos) {
    out[k] = sorted_values[pos];
    k += static_cast<std::size_t>(stamps[order[pos]] == target);
  }
  return k;
}

double SumAvx2(const double* values, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();  // partial lanes 0..3
  __m256d acc1 = _mm256_setzero_pd();  // partial lanes 4..7
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(values + j));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(values + j + 4));
  }
  double s[8];
  _mm256_storeu_pd(s, acc0);
  _mm256_storeu_pd(s + 4, acc1);
  SumTail8(values, j, n, s);
  return Combine8(s);
}

double SumSqDevAvx2(const double* values, std::size_t n, double mean) {
  const __m256d vmean = _mm256_set1_pd(mean);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(values + j), vmean);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(values + j + 4), vmean);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  double s[8];
  _mm256_storeu_pd(s, acc0);
  _mm256_storeu_pd(s + 4, acc1);
  SumSqDevTail8(values, j, n, mean, s);
  return Combine8(s);
}

void BinIndexAvx2(const double* values, std::size_t n, double lo,
                  double scale, double max_bin, std::uint32_t* out) {
  // Elementwise sub/mul/clamp/truncate, 4 doubles -> 4 uint32 per step.
  // maxpd/minpd return the second operand when the first is NaN, which is
  // exactly BinIndexOne's `t > 0.0 ? t : 0.0` clamp — so NaN lands in bin
  // 0 and cvttpd never sees an out-of-range value.
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vmax = _mm256_set1_pd(max_bin);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d t =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(values + j), vlo), vscale);
    t = _mm256_max_pd(t, vzero);
    t = _mm256_min_pd(t, vmax);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j),
                     _mm256_cvttpd_epi32(t));
  }
  BinIndexTail(values, j, n, lo, scale, max_bin, out);
}

}  // namespace

const SimdKernels& Avx2Kernels() {
  static const SimdKernels kernels = {
      SquaredDistanceAvx2,
      SquaredDistanceBoundedAvx2,
      ScreenRowF64Avx2,
      ScreenRowF32Avx2,
      CompactSelectedAvx2,
      CompactSelectedSortedAvx2,
      SumAvx2,
      SumSqDevAvx2,
      BinIndexAvx2,
      "avx2",
  };
  return kernels;
}

}  // namespace hics::simd::internal

#endif  // HICS_SIMD_COMPILED_AVX2
